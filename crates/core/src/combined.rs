//! The paper's unified approach: reliability-centric version selection
//! followed by redundancy on the leftover area.

use crate::bounds::Bounds;
use crate::design::Design;
use crate::error::SynthesisError;
use crate::flow::{FlowSpec, SynthReport};
use crate::redundancy::{add_redundancy_with_model, RedundancyModel};
use crate::synth::Synthesizer;
use rchls_dfg::Dfg;
use rchls_reslib::Library;

/// Runs the reliability-centric synthesizer, then spends any area still
/// under the bound on modular redundancy — the "Our approach + Ref \[3\]"
/// column of the paper's Table 2.
///
/// As in the paper, redundant copies use *the same version* the
/// reliability-centric pass selected for the instance ("when we add
/// redundancy for an operator, we use the same version selected by our
/// reliability-centric approach as duplicate(s)").
///
/// The combined design space *contains* the baseline's (a single-version
/// design plus redundancy is one point in it), so the unified scheme is
/// evaluated as a portfolio: if the pure redundancy design happens to beat
/// the refined-then-replicated one, it is returned instead. This is what
/// makes the paper's claim — "this combined approach obtains a better
/// reliability than \[3\]" — hold unconditionally.
///
/// # Errors
///
/// Returns an error only when *neither* branch of the portfolio finds a
/// feasible design.
///
/// # Examples
///
/// ```
/// use rchls_core::{synthesize_combined, Bounds, FlowSpec, RedundancyModel};
/// use rchls_dfg::{DfgBuilder, OpKind};
/// use rchls_reslib::Library;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = DfgBuilder::new("pair").ops(&["a", "b"], OpKind::Add).dep("a", "b").build()?;
/// let library = Library::table1();
/// let d = synthesize_combined(
///     &dfg, &library, Bounds::new(4, 6), &FlowSpec::default(), RedundancyModel::default(),
/// )?;
/// assert!(d.area <= 6);
/// # Ok(())
/// # }
/// ```
pub fn synthesize_combined(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    flow: &FlowSpec,
    model: RedundancyModel,
) -> Result<Design, SynthesisError> {
    combined_report(dfg, library, bounds, flow, model).map(|r| r.design)
}

/// [`synthesize_combined`] with a full diagnostics-carrying
/// [`SynthReport`] — the engine behind the `"combined"`
/// [`Strategy`](crate::Strategy). The report's diagnostics fold together
/// both portfolio branches (the reliability-centric run and, when it was
/// evaluated, the baseline).
///
/// # Errors
///
/// Same contract as [`synthesize_combined`].
pub fn combined_report(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    flow: &FlowSpec,
    model: RedundancyModel,
) -> Result<SynthReport, SynthesisError> {
    combined_report_for(
        &crate::flow::SynthRequest::new(dfg, library, bounds)
            .with_flow(flow.clone())
            .with_redundancy(model),
    )
}

/// [`combined_report`] on a full [`SynthRequest`], inheriting whatever
/// session state (scratch pool, starts cache) the request carries.
///
/// # Errors
///
/// Same contract as [`combined_report`].
///
/// [`SynthRequest`]: crate::SynthRequest
pub(crate) fn combined_report_for(
    request: &crate::flow::SynthRequest<'_>,
) -> Result<SynthReport, SynthesisError> {
    let (dfg, library, bounds, model) = (
        request.dfg,
        request.library,
        request.bounds,
        request.redundancy,
    );
    let span = rchls_telemetry::span!(timed: "strategy.combined");
    let ours = Synthesizer::for_request(request)?
        .synthesize_report(bounds)
        .map(|mut report| {
            report.diagnostics.redundancy_moves +=
                add_redundancy_with_model(&mut report.design, dfg, library, bounds.area, model);
            report
        });
    let baseline = crate::baseline::nmr_baseline_report_pooled(
        dfg,
        library,
        bounds,
        &request.flow,
        model,
        request.scratch_pool(),
    );
    let mut report = match (ours, baseline) {
        (Ok(a), Ok(b)) => {
            if a.design.reliability.value() >= b.design.reliability.value() {
                let mut a = a;
                a.diagnostics.absorb(&b.diagnostics);
                a
            } else {
                let mut b = b;
                b.diagnostics.absorb(&a.diagnostics);
                b
            }
        }
        (Ok(a), Err(_)) => a,
        (Err(_), Ok(b)) => b,
        (Err(e), Err(_)) => return Err(e),
    };
    report.diagnostics.wall_time_micros = span.elapsed_micros();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn figure4a() -> Dfg {
        DfgBuilder::new("figure4a")
            .ops(&["A", "B", "C", "D", "E", "F"], OpKind::Add)
            .dep("A", "C")
            .dep("B", "C")
            .dep("C", "D")
            .dep("C", "E")
            .dep("D", "F")
            .dep("E", "F")
            .build()
            .unwrap()
    }

    #[test]
    fn combined_is_at_least_as_reliable_as_ours() {
        let g = figure4a();
        let lib = Library::table1();
        for (latency, area) in [(5u32, 4u32), (5, 6), (6, 5), (8, 8)] {
            let bounds = Bounds::new(latency, area);
            let ours = Synthesizer::new(&g, &lib).synthesize(bounds).unwrap();
            let comb = synthesize_combined(
                &g,
                &lib,
                bounds,
                &FlowSpec::default(),
                RedundancyModel::default(),
            )
            .unwrap();
            assert!(
                comb.reliability.value() + 1e-12 >= ours.reliability.value(),
                "combined regressed at {bounds}"
            );
            assert!(comb.area <= area);
            assert!(comb.latency <= latency);
        }
    }

    #[test]
    fn combined_uses_leftover_area() {
        let g = figure4a();
        let lib = Library::table1();
        let bounds = Bounds::new(8, 8);
        let ours = Synthesizer::new(&g, &lib).synthesize(bounds).unwrap();
        let comb = synthesize_combined(
            &g,
            &lib,
            bounds,
            &FlowSpec::default(),
            RedundancyModel::default(),
        )
        .unwrap();
        // Redundancy moves are only committed when they strictly improve
        // reliability, so any extra area implies a strictly better design.
        assert!(comb.area >= ours.area);
        if comb.area > ours.area {
            assert!(comb.reliability.value() > ours.reliability.value());
        } else {
            assert!((comb.reliability.value() - ours.reliability.value()).abs() < 1e-12);
        }
    }
}
