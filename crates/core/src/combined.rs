//! The paper's unified approach: reliability-centric version selection
//! followed by redundancy on the leftover area.

use crate::bounds::Bounds;
use crate::config::SynthConfig;
use crate::design::Design;
use crate::error::SynthesisError;
use crate::redundancy::{add_redundancy_with_model, RedundancyModel};
use crate::synth::Synthesizer;
use rchls_dfg::Dfg;
use rchls_reslib::Library;

/// Runs the reliability-centric synthesizer, then spends any area still
/// under the bound on modular redundancy — the "Our approach + Ref \[3\]"
/// column of the paper's Table 2.
///
/// As in the paper, redundant copies use *the same version* the
/// reliability-centric pass selected for the instance ("when we add
/// redundancy for an operator, we use the same version selected by our
/// reliability-centric approach as duplicate(s)").
///
/// The combined design space *contains* the baseline's (a single-version
/// design plus redundancy is one point in it), so the unified scheme is
/// evaluated as a portfolio: if the pure redundancy design happens to beat
/// the refined-then-replicated one, it is returned instead. This is what
/// makes the paper's claim — "this combined approach obtains a better
/// reliability than \[3\]" — hold unconditionally.
///
/// # Errors
///
/// Returns an error only when *neither* branch of the portfolio finds a
/// feasible design.
///
/// # Examples
///
/// ```
/// use rchls_core::{synthesize_combined, Bounds, RedundancyModel, SynthConfig};
/// use rchls_dfg::{DfgBuilder, OpKind};
/// use rchls_reslib::Library;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = DfgBuilder::new("pair").ops(&["a", "b"], OpKind::Add).dep("a", "b").build()?;
/// let library = Library::table1();
/// let d = synthesize_combined(
///     &dfg, &library, Bounds::new(4, 6), SynthConfig::default(), RedundancyModel::default(),
/// )?;
/// assert!(d.area <= 6);
/// # Ok(())
/// # }
/// ```
pub fn synthesize_combined(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    config: SynthConfig,
    model: RedundancyModel,
) -> Result<Design, SynthesisError> {
    let ours = Synthesizer::with_config(dfg, library, config)
        .synthesize(bounds)
        .map(|mut design| {
            add_redundancy_with_model(&mut design, dfg, library, bounds.area, model);
            design
        });
    let baseline = crate::baseline::synthesize_nmr_baseline(dfg, library, bounds, model);
    match (ours, baseline) {
        (Ok(a), Ok(b)) => Ok(if a.reliability.value() >= b.reliability.value() {
            a
        } else {
            b
        }),
        (Ok(a), Err(_)) => Ok(a),
        (Err(_), Ok(b)) => Ok(b),
        (Err(e), Err(_)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn figure4a() -> Dfg {
        DfgBuilder::new("figure4a")
            .ops(&["A", "B", "C", "D", "E", "F"], OpKind::Add)
            .dep("A", "C")
            .dep("B", "C")
            .dep("C", "D")
            .dep("C", "E")
            .dep("D", "F")
            .dep("E", "F")
            .build()
            .unwrap()
    }

    #[test]
    fn combined_is_at_least_as_reliable_as_ours() {
        let g = figure4a();
        let lib = Library::table1();
        for (latency, area) in [(5u32, 4u32), (5, 6), (6, 5), (8, 8)] {
            let bounds = Bounds::new(latency, area);
            let ours = Synthesizer::new(&g, &lib).synthesize(bounds).unwrap();
            let comb = synthesize_combined(
                &g,
                &lib,
                bounds,
                SynthConfig::default(),
                RedundancyModel::default(),
            )
            .unwrap();
            assert!(
                comb.reliability.value() + 1e-12 >= ours.reliability.value(),
                "combined regressed at {bounds}"
            );
            assert!(comb.area <= area);
            assert!(comb.latency <= latency);
        }
    }

    #[test]
    fn combined_uses_leftover_area() {
        let g = figure4a();
        let lib = Library::table1();
        let bounds = Bounds::new(8, 8);
        let ours = Synthesizer::new(&g, &lib).synthesize(bounds).unwrap();
        let comb = synthesize_combined(
            &g,
            &lib,
            bounds,
            SynthConfig::default(),
            RedundancyModel::default(),
        )
        .unwrap();
        // Redundancy moves are only committed when they strictly improve
        // reliability, so any extra area implies a strictly better design.
        assert!(comb.area >= ours.area);
        if comb.area > ours.area {
            assert!(comb.reliability.value() > ours.reliability.value());
        } else {
            assert!((comb.reliability.value() - ours.reliability.value()).abs() < 1e-12);
        }
    }
}
