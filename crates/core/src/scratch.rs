//! Session-scoped synthesis scratch state.
//!
//! Every synthesis point runs the same inner loop — derive delays,
//! schedule, bind, check — hundreds of times while the Figure-6 loops and
//! the refinement pass explore candidates. A [`SynthScratch`] bundles the
//! reusable arenas those kernels need ([`SchedScratch`], [`BindScratch`],
//! and a delay-map buffer); a [`ScratchPool`] lends scratches to
//! concurrent jobs so a whole batch/sweep session allocates a handful of
//! arenas total instead of re-allocating per point.
//!
//! The pool is wired through the stack automatically: every
//! [`SynthCache`](crate::SynthCache) owns one (so the engine's batches,
//! the explorer's sweeps, and the CLI's sweep/pareto/batch commands all
//! pool), and [`SynthRequest`](crate::SynthRequest) carries an optional
//! pool reference for strategies to hand to the
//! [`Synthesizer`](crate::Synthesizer) they construct.

use rchls_bind::BindScratch;
use rchls_sched::{Delays, SchedScratch};
use std::fmt;
use std::sync::Mutex;

/// The per-synthesis-run scratch bundle.
#[derive(Debug, Default)]
pub struct SynthScratch {
    /// Scheduling buffers (cached topological order, windows, densities).
    pub sched: SchedScratch,
    /// Binding buffers (version groups, interval/conflict state).
    pub bind: BindScratch,
    /// Reusable delay map derived from the current version assignment.
    pub delays: Delays,
}

impl SynthScratch {
    /// Approximate heap footprint of the retained arenas in bytes
    /// (capacity-based, excluding `size_of::<SynthScratch>()`) — the
    /// size-accounting input for the pool's memory budget.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        self.sched.approx_heap_bytes()
            + self.bind.approx_heap_bytes()
            + self.delays.approx_heap_bytes()
    }
}

/// The lock-protected pool state: idle arenas with the byte size each
/// was booked at, the running total, and the optional retention budget.
#[derive(Default)]
struct PoolState {
    arenas: Vec<(SynthScratch, usize)>,
    bytes: usize,
    budget: Option<usize>,
}

/// A lock-protected stack of idle [`SynthScratch`] arenas.
///
/// `acquire` pops an arena (or creates one when the pool is dry) and
/// `release` returns it; with `k` concurrent jobs the pool converges on
/// `k` arenas for the life of the session. Returned arenas have their
/// cached topological order invalidated, so reuse across different
/// graphs is always safe.
///
/// Under a [`set_budget`](ScratchPool::set_budget) cap, `release` drops
/// (rather than retains) any arena that would push the pooled bytes past
/// the budget — arenas are pure capacity, so dropping one never changes
/// results, only the next acquire's allocation cost.
#[derive(Default)]
pub struct ScratchPool {
    pool: Mutex<PoolState>,
}

impl ScratchPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Caps the bytes of idle arena capacity the pool may retain
    /// (`None` = unlimited). A budget of 0 disables pooling entirely.
    pub fn set_budget(&self, budget: Option<usize>) {
        crate::sync::lock_unpoisoned(&self.pool).budget = budget;
    }

    /// Takes an idle scratch (creating one when none is pooled). The
    /// scratch's graph-keyed caches are invalidated before hand-out.
    #[must_use]
    pub fn acquire(&self) -> SynthScratch {
        crate::obs::scratch_pool_lends().incr();
        let pooled = {
            let mut state = crate::sync::lock_unpoisoned(&self.pool);
            let popped = state.arenas.pop();
            if let Some((_, bytes)) = &popped {
                state.bytes -= bytes;
            }
            popped.map(|(scratch, _)| scratch)
        };
        let mut scratch = pooled.unwrap_or_else(|| {
            crate::obs::scratch_pool_creates().incr();
            SynthScratch::default()
        });
        scratch.sched.invalidate();
        scratch
    }

    /// Returns a scratch to the pool for the next job — or drops it when
    /// retaining it would exceed the pool's byte budget.
    pub fn release(&self, scratch: SynthScratch) {
        let bytes = scratch.approx_heap_bytes();
        let mut state = crate::sync::lock_unpoisoned(&self.pool);
        if let Some(budget) = state.budget {
            if state.bytes + bytes > budget {
                drop(state);
                crate::obs::scratch_pool_drops().incr();
                return;
            }
        }
        state.bytes += bytes;
        state.arenas.push((scratch, bytes));
    }

    /// Number of idle arenas currently pooled.
    #[must_use]
    pub fn idle(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.pool).arenas.len()
    }

    /// Approximate bytes of idle arena capacity currently pooled.
    #[must_use]
    pub fn pooled_bytes(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.pool).bytes
    }
}

impl fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_arenas() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.acquire();
        assert_eq!(pool.idle(), 1);
    }
}
