//! Session-scoped synthesis scratch state.
//!
//! Every synthesis point runs the same inner loop — derive delays,
//! schedule, bind, check — hundreds of times while the Figure-6 loops and
//! the refinement pass explore candidates. A [`SynthScratch`] bundles the
//! reusable arenas those kernels need ([`SchedScratch`], [`BindScratch`],
//! and a delay-map buffer); a [`ScratchPool`] lends scratches to
//! concurrent jobs so a whole batch/sweep session allocates a handful of
//! arenas total instead of re-allocating per point.
//!
//! The pool is wired through the stack automatically: every
//! [`SynthCache`](crate::SynthCache) owns one (so the engine's batches,
//! the explorer's sweeps, and the CLI's sweep/pareto/batch commands all
//! pool), and [`SynthRequest`](crate::SynthRequest) carries an optional
//! pool reference for strategies to hand to the
//! [`Synthesizer`](crate::Synthesizer) they construct.

use rchls_bind::BindScratch;
use rchls_sched::{Delays, SchedScratch};
use std::fmt;
use std::sync::Mutex;

/// The per-synthesis-run scratch bundle.
#[derive(Debug, Default)]
pub struct SynthScratch {
    /// Scheduling buffers (cached topological order, windows, densities).
    pub sched: SchedScratch,
    /// Binding buffers (version groups, interval/conflict state).
    pub bind: BindScratch,
    /// Reusable delay map derived from the current version assignment.
    pub delays: Delays,
}

/// A lock-protected stack of idle [`SynthScratch`] arenas.
///
/// `acquire` pops an arena (or creates one when the pool is dry) and
/// `release` returns it; with `k` concurrent jobs the pool converges on
/// `k` arenas for the life of the session. Returned arenas have their
/// cached topological order invalidated, so reuse across different
/// graphs is always safe.
#[derive(Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<SynthScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Takes an idle scratch (creating one when none is pooled). The
    /// scratch's graph-keyed caches are invalidated before hand-out.
    #[must_use]
    pub fn acquire(&self) -> SynthScratch {
        crate::obs::scratch_pool_lends().incr();
        let pooled = self.pool.lock().expect("scratch pool lock").pop();
        let mut scratch = pooled.unwrap_or_else(|| {
            crate::obs::scratch_pool_creates().incr();
            SynthScratch::default()
        });
        scratch.sched.invalidate();
        scratch
    }

    /// Returns a scratch to the pool for the next job.
    pub fn release(&self, scratch: SynthScratch) {
        self.pool.lock().expect("scratch pool lock").push(scratch);
    }

    /// Number of idle arenas currently pooled.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("scratch pool lock").len()
    }
}

impl fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_arenas() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.acquire();
        assert_eq!(pool.idle(), 1);
    }
}
