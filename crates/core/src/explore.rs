//! Design-space sweep drivers behind the paper's tables and figures.
//!
//! All sweep functions apply *feasibility inheritance*: a design feasible
//! under bounds `(Ld, Ad)` is feasible under any looser bounds, so each
//! sweep point reports the best reliability over all dominated bound
//! pairs in the sweep. This turns the greedy engine's occasional
//! non-monotonicity (a tighter bound steering the heuristic to a better
//! local optimum) into the monotone curves a designer actually has
//! available — at no additional synthesis cost.
//!
//! Every strategy here is dispatched through the [`Strategy`] trait and
//! the flow registry — [`StrategyKind`] is only a thin enumeration of the
//! built-in ids for callers that want an exhaustive, `Copy` handle.

use crate::bounds::Bounds;
use crate::design::Design;
use crate::error::SynthesisError;
use crate::flow::{self, Diagnostics, FlowSpec, Strategy, SynthReport, SynthRequest};
use crate::redundancy::RedundancyModel;
use crate::synth::Synthesizer;
use rchls_dfg::Dfg;
use rchls_reslib::Library;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A built-in synthesis strategy, as a `Copy` handle over the registry —
/// the unit of work a sweep executor fans out over.
///
/// Each variant names one registered [`Strategy`]; [`strategy`]
/// (`StrategyKind::strategy`) resolves the shared instance and [`run`]
/// (`StrategyKind::run`) dispatches through the trait. Out-of-tree
/// strategies don't appear here — address them by id via
/// [`flow::strategy`].
///
/// [`strategy`]: StrategyKind::strategy
/// [`run`]: StrategyKind::run
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// The redundancy-based prior art (Ref \[3\]: Orailoglu–Karri NMR).
    Baseline,
    /// The paper's reliability-centric approach (Figure 6).
    Ours,
    /// The combined scheme: reliability-centric, then leftover-area
    /// redundancy.
    Combined,
    /// Pipelined reliability-centric synthesis at the automatic
    /// initiation interval.
    Pipelined,
    /// Redundancy over the best single-version design.
    Redundancy,
}

impl StrategyKind {
    /// All built-in strategies.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Baseline,
        StrategyKind::Ours,
        StrategyKind::Combined,
        StrategyKind::Pipelined,
        StrategyKind::Redundancy,
    ];

    /// The paper's three Table-2 strategies, in the paper's column order.
    pub const TABLE2: [StrategyKind; 3] = [
        StrategyKind::Baseline,
        StrategyKind::Ours,
        StrategyKind::Combined,
    ];

    /// The stable registry id (used in exports and CLI flags).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Baseline => "baseline",
            StrategyKind::Ours => "ours",
            StrategyKind::Combined => "combined",
            StrategyKind::Pipelined => "pipelined",
            StrategyKind::Redundancy => "redundancy",
        }
    }

    /// The built-in kind with the given registry id, if any.
    #[must_use]
    pub fn from_name(name: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The registered [`Strategy`] instance behind this kind.
    #[must_use]
    pub fn strategy(self) -> Arc<dyn Strategy> {
        flow::strategy(self.name()).expect("built-in strategies are always registered")
    }

    /// Runs this strategy at one `(dfg, bounds)` point through the
    /// [`Strategy`] trait, returning just the design.
    ///
    /// # Errors
    ///
    /// Returns the strategy's [`SynthesisError`] when no feasible design
    /// exists under `bounds`.
    pub fn run(
        self,
        dfg: &Dfg,
        library: &Library,
        bounds: Bounds,
        flow: &FlowSpec,
        model: RedundancyModel,
    ) -> Result<Design, SynthesisError> {
        self.run_report(dfg, library, bounds, flow, model)
            .map(|r| r.design)
    }

    /// Runs this strategy and returns the full diagnostics-carrying
    /// report.
    ///
    /// # Errors
    ///
    /// Returns the strategy's [`SynthesisError`] when no feasible design
    /// exists under `bounds`.
    pub fn run_report(
        self,
        dfg: &Dfg,
        library: &Library,
        bounds: Bounds,
        flow: &FlowSpec,
        model: RedundancyModel,
    ) -> Result<SynthReport, SynthesisError> {
        self.strategy().run(
            &SynthRequest::new(dfg, library, bounds)
                .with_flow(flow.clone())
                .with_redundancy(model),
        )
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One strategy's diagnostics at one sweep point (wall time scrubbed for
/// determinism — see [`Diagnostics::scrubbed`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrategyDiagnostics {
    /// The strategy's registry id.
    pub strategy: String,
    /// The scrubbed diagnostics of the run.
    pub diagnostics: Diagnostics,
}

/// One row of a Table-2-style comparison: the three strategies at one
/// `(Ld, Ad)` point. `None` means the strategy found no feasible design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Latency bound `Ld`.
    pub latency_bound: u32,
    /// Area bound `Ad`.
    pub area_bound: u32,
    /// Reliability of the redundancy baseline (\[3\]).
    pub baseline: Option<f64>,
    /// Reliability of the reliability-centric approach.
    pub ours: Option<f64>,
    /// Reliability of the combined approach.
    pub combined: Option<f64>,
    /// Per-strategy diagnostics of this point's own (raw) runs, in
    /// [`StrategyKind::TABLE2`] order, feasible runs only. Feasibility
    /// inheritance copies a row's reliabilities from dominated rows but
    /// keeps the row's own diagnostics.
    pub diagnostics: Vec<StrategyDiagnostics>,
}

impl SweepRow {
    /// An empty row at the given bounds.
    #[must_use]
    pub fn empty(latency_bound: u32, area_bound: u32) -> SweepRow {
        SweepRow {
            latency_bound,
            area_bound,
            baseline: None,
            ours: None,
            combined: None,
            diagnostics: Vec::new(),
        }
    }

    /// Percentage improvement of ours over the baseline (the paper's
    /// "% Imprv" column); `None` if either side is infeasible.
    #[must_use]
    pub fn improvement_pct(&self) -> Option<f64> {
        match (self.baseline, self.ours) {
            (Some(b), Some(o)) if b > 0.0 => Some((o - b) / b * 100.0),
            _ => None,
        }
    }

    /// Percentage improvement of the combined approach over the baseline.
    #[must_use]
    pub fn combined_improvement_pct(&self) -> Option<f64> {
        match (self.baseline, self.combined) {
            (Some(b), Some(c)) if b > 0.0 => Some((c - b) / b * 100.0),
            _ => None,
        }
    }
}

/// Runs the three Table-2 strategies at one `(Ld, Ad)` point and reports
/// their raw (pre-inheritance) reliabilities and diagnostics — the unit
/// of work behind every sweep. Parallel drivers (`rchls-explorer`) fan
/// this out per point and then apply [`inherit`], which reproduces
/// [`sweep`] exactly.
///
/// # Panics
///
/// Panics if `flow` names a pass id the registry doesn't know — a
/// mistyped id would otherwise be indistinguishable from an infeasible
/// point.
#[must_use]
pub fn sweep_point(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    flow: &FlowSpec,
    model: RedundancyModel,
) -> SweepRow {
    if let Err(e) = flow.resolve() {
        panic!("sweep_point: {e}");
    }
    let mut row = SweepRow::empty(bounds.latency, bounds.area);
    for kind in StrategyKind::TABLE2 {
        let report = kind.run_report(dfg, library, bounds, flow, model).ok();
        let reliability = report.as_ref().map(|r| r.design.reliability.value());
        match kind {
            StrategyKind::Baseline => row.baseline = reliability,
            StrategyKind::Ours => row.ours = reliability,
            StrategyKind::Combined => row.combined = reliability,
            _ => unreachable!("TABLE2 holds the paper's three strategies"),
        }
        if let Some(report) = report {
            row.diagnostics.push(StrategyDiagnostics {
                strategy: kind.name().to_owned(),
                diagnostics: report.diagnostics.scrubbed(),
            });
        }
    }
    row
}

/// Applies feasibility inheritance over a sweep's own dominance order:
/// each row reports, per strategy, the best reliability among all rows
/// whose bounds are no looser (see the module docs). Diagnostics stay
/// with their own row.
#[must_use]
pub fn inherit(raw: &[SweepRow]) -> Vec<SweepRow> {
    raw.iter()
        .map(|row| {
            let dominated = |other: &SweepRow| {
                other.latency_bound <= row.latency_bound && other.area_bound <= row.area_bound
            };
            let best = |f: fn(&SweepRow) -> Option<f64>| {
                raw.iter()
                    .filter(|o| dominated(o))
                    .filter_map(f)
                    .fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    })
            };
            SweepRow {
                latency_bound: row.latency_bound,
                area_bound: row.area_bound,
                baseline: best(|r| r.baseline),
                ours: best(|r| r.ours),
                combined: best(|r| r.combined),
                diagnostics: row.diagnostics.clone(),
            }
        })
        .collect()
}

/// Runs the three Table-2 strategies over a grid of `(Ld, Ad)` bounds —
/// the driver behind Tables 2(a)–2(c) — with feasibility inheritance
/// across dominated grid cells (see the module docs).
#[must_use]
pub fn sweep(dfg: &Dfg, library: &Library, grid: &[(u32, u32)]) -> Vec<SweepRow> {
    let flow = FlowSpec::default();
    let model = RedundancyModel::default();
    let raw: Vec<SweepRow> = grid
        .iter()
        .map(|&(latency, area)| sweep_point(dfg, library, Bounds::new(latency, area), &flow, model))
        .collect();
    inherit(&raw)
}

/// Reliability of the reliability-centric approach as the latency bound
/// varies at fixed area (Figure 8a), with feasibility inheritance.
#[must_use]
pub fn reliability_vs_latency(
    dfg: &Dfg,
    library: &Library,
    area: u32,
    latencies: &[u32],
) -> Vec<(u32, Option<f64>)> {
    let raw: Vec<(u32, Option<f64>)> = latencies
        .iter()
        .map(|&l| {
            let r = Synthesizer::new(dfg, library)
                .synthesize(Bounds::new(l, area))
                .ok()
                .map(|d| d.reliability.value());
            (l, r)
        })
        .collect();
    inherit_1d(&raw)
}

/// Reliability of the reliability-centric approach as the area bound
/// varies at fixed latency (Figure 8b), with feasibility inheritance.
#[must_use]
pub fn reliability_vs_area(
    dfg: &Dfg,
    library: &Library,
    latency: u32,
    areas: &[u32],
) -> Vec<(u32, Option<f64>)> {
    let raw: Vec<(u32, Option<f64>)> = areas
        .iter()
        .map(|&a| {
            let r = Synthesizer::new(dfg, library)
                .synthesize(Bounds::new(latency, a))
                .ok()
                .map(|d| d.reliability.value());
            (a, r)
        })
        .collect();
    inherit_1d(&raw)
}

/// Feasibility inheritance along one loosening axis: each point reports
/// the best reliability among all points with a bound no looser than its
/// own.
fn inherit_1d(points: &[(u32, Option<f64>)]) -> Vec<(u32, Option<f64>)> {
    points
        .iter()
        .map(|&(bound, _)| {
            let best = points
                .iter()
                .filter(|&&(b, _)| b <= bound)
                .filter_map(|&(_, r)| r)
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                });
            (bound, best)
        })
        .collect()
}

/// Per-strategy average reliabilities over the feasible cells of a sweep
/// (the Figure 9 bars). Returns `(baseline, ours, combined)`.
#[must_use]
pub fn averages(rows: &[SweepRow]) -> (f64, f64, f64) {
    let avg = |f: fn(&SweepRow) -> Option<f64>| {
        let vals: Vec<f64> = rows.iter().filter_map(f).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    (avg(|r| r.baseline), avg(|r| r.ours), avg(|r| r.combined))
}

/// Formats sweep rows as an aligned text table matching the paper's
/// Table 2 layout.
#[must_use]
pub fn format_table(rows: &[SweepRow]) -> String {
    let mut out = String::from("  Ld   Ad    Ref[3]      Ours    %Imprv  Ours+Ref[3]  %Imprv\n");
    for r in rows {
        let cell = |v: Option<f64>| match v {
            Some(x) => format!("{x:.5}"),
            None => "   -   ".into(),
        };
        let pct = |v: Option<f64>| match v {
            Some(x) => format!("{x:+.2}"),
            None => "  -  ".into(),
        };
        out.push_str(&format!(
            "{:>4} {:>4}  {:>8}  {:>8}  {:>8}  {:>10}  {:>7}\n",
            r.latency_bound,
            r.area_bound,
            cell(r.baseline),
            cell(r.ours),
            pct(r.improvement_pct()),
            cell(r.combined),
            pct(r.combined_improvement_pct()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn figure4a() -> Dfg {
        DfgBuilder::new("figure4a")
            .ops(&["A", "B", "C", "D", "E", "F"], OpKind::Add)
            .dep("A", "C")
            .dep("B", "C")
            .dep("C", "D")
            .dep("C", "E")
            .dep("D", "F")
            .dep("E", "F")
            .build()
            .unwrap()
    }

    #[test]
    fn kinds_round_trip_through_ids_and_registry() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.strategy().id(), kind.name());
        }
        assert_eq!(StrategyKind::from_name("nope"), None);
        assert_eq!(StrategyKind::TABLE2.len(), 3);
    }

    #[test]
    fn sweep_produces_row_per_grid_point() {
        let g = figure4a();
        let lib = Library::table1();
        let grid = [(5u32, 4u32), (6, 4), (6, 6), (3, 1)];
        let rows = sweep(&g, &lib, &grid);
        assert_eq!(rows.len(), 4);
        // The infeasible point yields all-None and no diagnostics.
        let last = &rows[3];
        assert!(last.baseline.is_none() && last.ours.is_none() && last.combined.is_none());
        assert!(last.improvement_pct().is_none());
        assert!(last.diagnostics.is_empty());
        // Feasible points carry scrubbed per-strategy diagnostics.
        let first = &rows[0];
        assert_eq!(first.diagnostics.len(), 3);
        assert_eq!(first.diagnostics[0].strategy, "baseline");
        assert!(first
            .diagnostics
            .iter()
            .all(|d| d.diagnostics.wall_time_micros == 0));
    }

    #[test]
    fn combined_column_dominates_ours_column() {
        let g = figure4a();
        let lib = Library::table1();
        let grid: Vec<(u32, u32)> = (5..8).flat_map(|l| (3..7).map(move |a| (l, a))).collect();
        for row in sweep(&g, &lib, &grid) {
            if let (Some(o), Some(c)) = (row.ours, row.combined) {
                assert!(
                    c + 1e-12 >= o,
                    "combined below ours at Ld={} Ad={}",
                    row.latency_bound,
                    row.area_bound
                );
            }
        }
    }

    #[test]
    fn improvement_percentages_match_formula() {
        let row = SweepRow {
            baseline: Some(0.48467),
            ours: Some(0.59998),
            combined: Some(0.59998),
            ..SweepRow::empty(10, 9)
        };
        // The paper's Table 2a first row reports 23.79%.
        assert!((row.improvement_pct().unwrap() - 23.79).abs() < 0.01);
        assert!((row.combined_improvement_pct().unwrap() - 23.79).abs() < 0.01);
    }

    #[test]
    fn figure8_style_curves_are_monotone_for_figure4a() {
        let g = figure4a();
        let lib = Library::table1();
        let latencies = [4u32, 5, 6, 8, 10, 12];
        let curve = reliability_vs_latency(&g, &lib, 4, &latencies);
        let feasible: Vec<f64> = curve.iter().filter_map(|&(_, r)| r).collect();
        assert!(!feasible.is_empty());
        for w in feasible.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "loosening latency lowered reliability");
        }
        let areas = [1u32, 2, 3, 4, 6, 8];
        let curve = reliability_vs_area(&g, &lib, 6, &areas);
        let feasible: Vec<f64> = curve.iter().filter_map(|&(_, r)| r).collect();
        for w in feasible.windows(2) {
            assert!(w[1] + 1e-9 >= w[0], "loosening area lowered reliability");
        }
    }

    #[test]
    fn averages_and_formatting() {
        let g = figure4a();
        let lib = Library::table1();
        let rows = sweep(&g, &lib, &[(5, 4), (6, 5)]);
        let (b, o, c) = averages(&rows);
        assert!(b > 0.0 && o > 0.0 && c > 0.0);
        assert!(c + 1e-12 >= o);
        let table = format_table(&rows);
        assert!(table.contains("Ref[3]"));
        assert!(table.lines().count() == rows.len() + 1);
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn sweep_point_rejects_mistyped_pass_ids() {
        let g = figure4a();
        let lib = Library::table1();
        let _ = sweep_point(
            &g,
            &lib,
            Bounds::new(5, 4),
            &FlowSpec::default().with_scheduler("densty"),
            RedundancyModel::default(),
        );
    }

    #[test]
    fn all_five_builtins_run_through_the_trait() {
        let g = figure4a();
        let lib = Library::table1();
        let bounds = Bounds::new(8, 8);
        for kind in StrategyKind::ALL {
            let report = kind
                .run_report(
                    &g,
                    &lib,
                    bounds,
                    &FlowSpec::default(),
                    RedundancyModel::default(),
                )
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(report.design.latency <= bounds.latency, "{kind}");
            assert!(report.design.area <= bounds.area, "{kind}");
        }
    }
}
