//! Reliability-centric high-level synthesis (Tosun et al., DATE 2005).
//!
//! This crate is the paper's primary contribution: given a data-flow graph,
//! a reliability-characterized resource library, and latency/area bounds,
//! find the *most reliable* design that meets both bounds by choosing, per
//! operation, among several library versions of its functional unit.
//!
//! Synthesis is organized as an **open flow** (the [`flow`] module):
//! scheduler, binder, victim-policy, and refine passes are trait objects
//! named by stable string ids in a [`FlowSpec`], and whole algorithms
//! implement the [`Strategy`] trait, turning a [`SynthRequest`] into a
//! diagnostics-carrying [`SynthReport`]. Five strategies ship built in:
//!
//! * `"ours"` ([`Synthesizer`]) — the paper's Figure-6 algorithm: start
//!   from the most reliable version everywhere, then degrade carefully
//!   chosen victims until the latency bound and then the area bound are
//!   met;
//! * `"baseline"` ([`synthesize_nmr_baseline`]) — the redundancy-based
//!   prior art (Orailoglu–Karri): one fixed version per class,
//!   reliability grown by N-modular redundancy within the leftover area;
//! * `"combined"` ([`synthesize_combined`]) — the paper's unified scheme:
//!   run the reliability-centric algorithm, then spend any remaining area
//!   on redundancy;
//! * `"pipelined"` ([`Synthesizer::synthesize_pipelined`]) — the same
//!   reliability-centric selection under modulo scheduling at a fixed
//!   initiation interval;
//! * `"redundancy"` — replication over the best single-version design.
//!
//! Out-of-tree crates extend any slot by registering a trait impl (see
//! [`flow::register_scheduler`]). [`explore`] drives the (latency, area)
//! sweeps behind every table and figure of the paper's evaluation, and
//! [`modes`] implements the paper's future-work objectives (minimize area
//! / minimize latency under a reliability bound).
//!
//! For serving many requests, [`engine`] wraps the per-call API in a
//! session: an [`Engine`] interns the library and every workload behind
//! `Arc`, memoizes synthesis points in a fingerprint cache, and runs
//! [`SynthJob`] batches in parallel with deterministic, job-ordered
//! output. Workloads are addressed by spec strings (`builtin:fir16`,
//! `random:64x8@7`, `file:path.dfg`) resolved through the open
//! [`rchls_workloads`] source registry.
//!
//! # Examples
//!
//! ```
//! use rchls_core::{Bounds, Synthesizer};
//! use rchls_dfg::{DfgBuilder, OpKind};
//! use rchls_reslib::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = DfgBuilder::new("tiny")
//!     .ops(&["a", "b"], OpKind::Add)
//!     .dep("a", "b")
//!     .build()?;
//! let library = Library::table1();
//! let design = Synthesizer::new(&dfg, &library).synthesize(Bounds::new(4, 4))?;
//! assert!(design.latency <= 4);
//! assert!(design.area <= 4);
//! // Plenty of slack: both adds run on the most reliable adder.
//! assert!((design.reliability.value() - 0.999f64.powi(2)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_search;
mod baseline;
mod bounds;
mod combined;
mod design;
pub mod engine;
mod error;
pub mod explore;
pub mod flow;
pub mod modes;
mod obs;
mod pipelined;
mod redundancy;
mod scratch;
mod sync;
mod synth;
mod validate;

pub use baseline::{baseline_versions, nmr_baseline_report, synthesize_nmr_baseline};
pub use bounds::Bounds;
pub use combined::{combined_report, synthesize_combined};
pub use design::Design;
pub use engine::{BatchReport, CacheBudget, Engine, EngineError, JobOutcome, SynthJob};
pub use error::SynthesisError;
pub use explore::{StrategyDiagnostics, StrategyKind};
pub use flow::{Diagnostics, FlowSpec, Strategy, SynthReport, SynthRequest};
pub use redundancy::{add_redundancy, add_redundancy_with_model, RedundancyModel};
pub use scratch::{ScratchPool, SynthScratch};
pub use synth::Synthesizer;
pub use validate::monte_carlo_reliability;
