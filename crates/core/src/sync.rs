//! Poison-tolerant lock acquisition for the session-shared state.
//!
//! Every `Mutex`/`RwLock` in this crate guards a *cache or registry*:
//! the memo table, the starts/alloc tables, the scratch pool, the
//! workload intern table, and the flow registries. None of them run
//! caller code while holding the guard, so a panic observed as poison
//! happened in an unrelated critical section (most likely an
//! allocation failure) and cannot have left the structure torn —
//! `HashMap`/`Vec` operations are unwind-safe at the value level, and
//! every cached value is validated on read (content fingerprints plus
//! a collision check) or is an immutable `Arc`.
//!
//! A long-lived daemon shares one [`Engine`](crate::Engine) session
//! across all requests; treating poison as fatal would turn one
//! panicking request into a permanent outage for every later request
//! that touches the same cache. Instead these helpers recover the
//! guard, count the event as `core.lock_poisoned`, and let the worst
//! case be a stale or missing cache entry — a recompute, never a wrong
//! answer.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering (and counting) a poisoned guard.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        crate::obs::lock_poisoned().incr();
        poisoned.into_inner()
    })
}

/// Read-locks `l`, recovering (and counting) a poisoned guard.
pub(crate) fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| {
        crate::obs::lock_poisoned().incr();
        poisoned.into_inner()
    })
}

/// Write-locks `l`, recovering (and counting) a poisoned guard.
pub(crate) fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| {
        crate::obs::lock_poisoned().incr();
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn poisoned_mutex_recovers_with_state_intact() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), vec![1, 2, 3]);
        // And the lock keeps working afterwards.
        lock_unpoisoned(&m).push(4);
        assert_eq!(lock_unpoisoned(&m).len(), 4);
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(7u32));
        let clone = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = clone.write().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read_unpoisoned(&l), 7);
        *write_unpoisoned(&l) = 8;
        assert_eq!(*read_unpoisoned(&l), 8);
    }
}
