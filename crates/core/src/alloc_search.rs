//! Allocation-first design-space search.
//!
//! The Figure-6 greedy descends from the most-reliable assignment and can
//! get stuck when the only feasible designs mix versions in ways no
//! single-group move reaches (the paper's own Figure-7(b) FIR design —
//! two ripple-carry adders, two carry-save multipliers and one Brent-Kung
//! adder — is exactly such a point). This module searches from the other
//! end: enumerate *allocations* (multisets of unit versions whose total
//! area fits the bound), schedule the graph against each allocation with a
//! version-aware list scheduler, and keep the most reliable feasible
//! design. The enumeration is small for realistic libraries (a handful of
//! versions, tens of area units) and is capped defensively.

use crate::bounds::Bounds;
use rchls_bind::{Assignment, Binding, Instance, InstanceId};
use rchls_dfg::{Dfg, NodeId, OpClass};
use rchls_reslib::{Library, VersionId};
use rchls_sched::Schedule;

/// Hard cap on enumerated allocations; beyond this the search declines
/// (returns no candidates) rather than blow up combinatorially.
const MAX_ALLOCATIONS: usize = 200_000;

/// Enumerates all unit allocations (counts per version) with total area
/// within `area_bound`, at least one unit for every class the graph uses,
/// and no more units of a class than the graph has operations of it.
pub fn enumerate_allocations(
    dfg: &Dfg,
    library: &Library,
    area_bound: u32,
) -> Vec<Vec<(VersionId, u32)>> {
    let used: Vec<OpClass> = OpClass::ALL
        .into_iter()
        .filter(|&c| dfg.count_class(c) > 0)
        .collect();
    let versions: Vec<VersionId> = used
        .iter()
        .flat_map(|&c| library.versions_of(c).map(|(id, _)| id))
        .collect();
    let class_ops = |c: OpClass| -> u32 { u32::try_from(dfg.count_class(c)).unwrap_or(u32::MAX) };
    let mut out: Vec<Vec<(VersionId, u32)>> = Vec::new();
    let mut counts: Vec<u32> = vec![0; versions.len()];
    fn recurse(
        versions: &[VersionId],
        library: &Library,
        idx: usize,
        area_left: u32,
        counts: &mut Vec<u32>,
        out: &mut Vec<Vec<(VersionId, u32)>>,
        class_cap: &dyn Fn(OpClass) -> u32,
    ) {
        if out.len() >= MAX_ALLOCATIONS {
            return;
        }
        if idx == versions.len() {
            out.push(
                versions
                    .iter()
                    .zip(counts.iter())
                    .filter(|(_, &c)| c > 0)
                    .map(|(&v, &c)| (v, c))
                    .collect(),
            );
            return;
        }
        let v = versions[idx];
        let ver = library.version(v);
        let unit = ver.area();
        let cap = (area_left / unit).min(class_cap(ver.class()));
        for c in 0..=cap {
            counts[idx] = c;
            recurse(
                versions,
                library,
                idx + 1,
                area_left - c * unit,
                counts,
                out,
                class_cap,
            );
        }
        counts[idx] = 0;
    }
    recurse(
        &versions,
        library,
        0,
        area_bound,
        &mut counts,
        &mut out,
        &|c| class_ops(c),
    );
    // Keep only allocations covering every used class.
    out.retain(|alloc| {
        used.iter().all(|&c| {
            alloc
                .iter()
                .any(|&(v, n)| n > 0 && library.version(v).class() == c)
        })
    });
    out
}

/// Version-aware list scheduling against a fixed allocation.
///
/// Ready operations are started in priority order (longest remaining path
/// under optimistic per-class minimum delays). Each op picks, among the
/// free units of its class, the most reliable one that still lets its
/// downstream chain finish within the bound; if none looks safe, the
/// fastest free unit is taken.
///
/// Returns `None` when the allocation cannot complete the graph within
/// `latency_bound` under this heuristic.
pub fn schedule_on_allocation(
    dfg: &Dfg,
    library: &Library,
    allocation: &[(VersionId, u32)],
    latency_bound: u32,
) -> Option<(Assignment, Schedule, Binding)> {
    struct Unit {
        version: VersionId,
        free_at: u32, // first step this unit can start a new op
        nodes: Vec<NodeId>,
    }
    let mut units: Vec<Unit> = allocation
        .iter()
        .flat_map(|&(v, n)| {
            (0..n).map(move |_| Unit {
                version: v,
                free_at: 1,
                nodes: Vec::new(),
            })
        })
        .collect();
    if units.is_empty() && !dfg.is_empty() {
        return None;
    }

    // Optimistic remaining-path lengths (per-class minimum delays).
    let order = dfg.topological_order().ok()?;
    let min_delay = |n: NodeId| {
        library
            .min_delay(dfg.node(n).class())
            .expect("allocation covers every used class")
    };
    let mut remaining_path = vec![0u32; dfg.node_count()];
    for &n in order.iter().rev() {
        let down = dfg
            .succs(n)
            .iter()
            .map(|&s| remaining_path[s.index()])
            .max()
            .unwrap_or(0);
        remaining_path[n.index()] = down + min_delay(n);
    }

    let mut start: Vec<Option<u32>> = vec![None; dfg.node_count()];
    let mut finish: Vec<u32> = vec![0; dfg.node_count()];
    let mut owner: Vec<usize> = vec![0; dfg.node_count()];
    let mut remaining = dfg.node_count();
    // The fastest delay actually available per class in this allocation —
    // the deferral horizon: as long as starting *now* on such a unit would
    // still meet the deadline, waiting for one to free up is viable.
    let alloc_min_delay = |class: OpClass| {
        units
            .iter()
            .filter(|u| library.version(u.version).class() == class)
            .map(|u| library.version(u.version).delay())
            .min()
    };
    let mut class_min: Vec<(OpClass, u32)> = Vec::new();
    for class in OpClass::ALL {
        if let Some(d) = alloc_min_delay(class) {
            class_min.push((class, d));
        }
    }
    for step in 1..=latency_bound {
        if remaining == 0 {
            break;
        }
        let mut ready: Vec<NodeId> = dfg
            .node_ids()
            .filter(|&n| {
                start[n.index()].is_none()
                    && dfg
                        .preds(n)
                        .iter()
                        .all(|&p| start[p.index()].is_some() && finish[p.index()] < step)
            })
            .collect();
        ready.sort_by_key(|&n| (std::cmp::Reverse(remaining_path[n.index()]), n.index()));
        for n in ready {
            let class = dfg.node(n).class();
            let downstream = remaining_path[n.index()] - min_delay(n);
            // Free units of this class, judged for deadline safety.
            let mut free: Vec<(usize, &Unit)> = units
                .iter()
                .enumerate()
                .filter(|(_, u)| u.free_at <= step && library.version(u.version).class() == class)
                .collect();
            if free.is_empty() {
                continue;
            }
            let safe = |u: &Unit| {
                step - 1 + library.version(u.version).delay() + downstream <= latency_bound
            };
            let pick = if free.iter().any(|(_, u)| safe(u)) {
                // Most reliable among deadline-safe units.
                free.retain(|(_, u)| safe(u));
                free.into_iter()
                    .min_by(|(ia, a), (ib, b)| {
                        let (va, vb) = (library.version(a.version), library.version(b.version));
                        vb.reliability()
                            .value()
                            .total_cmp(&va.reliability().value())
                            .then(va.delay().cmp(&vb.delay()))
                            .then(ia.cmp(ib))
                    })
                    .map(|(i, _)| i)
            } else {
                // No safe unit is free. If a fast-enough unit exists in the
                // allocation and starting now on it would still meet the
                // deadline, defer the op: forcing it onto a slow unit now
                // would wreck a downstream chain that a one-step wait saves.
                let horizon = class_min
                    .iter()
                    .find(|(c, _)| *c == class)
                    .map(|&(_, d)| d)
                    .expect("class covered by allocation");
                if step - 1 + horizon + downstream <= latency_bound {
                    continue; // wait for a safe unit
                }
                // Doomed either way: grab the fastest to limit the damage.
                free.into_iter()
                    .min_by_key(|(i, u)| (library.version(u.version).delay(), *i))
                    .map(|(i, _)| i)
            };
            let Some(idx) = pick else { continue };
            let delay = library.version(units[idx].version).delay();
            start[n.index()] = Some(step);
            finish[n.index()] = step + delay - 1;
            units[idx].free_at = step + delay;
            units[idx].nodes.push(n);
            owner[n.index()] = idx;
            remaining -= 1;
        }
    }
    if remaining > 0 || finish.iter().copied().max().unwrap_or(0) > latency_bound {
        return None;
    }

    let assignment = Assignment::from_fn(dfg, library, |n| units[owner[n.index()]].version);
    let delays = assignment.delays(dfg, library);
    let starts: Vec<u32> = start.into_iter().map(|s| s.unwrap_or(1)).collect();
    let schedule = Schedule::new(starts, &delays);
    schedule.validate(dfg, &delays).ok()?;
    // Compact: drop unused units and renumber owners.
    let mut instances: Vec<Instance> = Vec::new();
    let mut owner_map = vec![InstanceId::new(0); dfg.node_count()];
    for unit in units.into_iter().filter(|u| !u.nodes.is_empty()) {
        let id = InstanceId::new(instances.len() as u32);
        for &n in &unit.nodes {
            owner_map[n.index()] = id;
        }
        instances.push(Instance {
            version: unit.version,
            nodes: unit.nodes,
        });
    }
    let binding = Binding::new(instances, owner_map);
    Some((assignment, schedule, binding))
}

/// Full allocation search: the most reliable feasible design over all
/// enumerated allocations, or `None` if none schedules within the bounds.
pub fn best_allocation_design(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
) -> Option<(Assignment, Schedule, Binding)> {
    let mut best: Option<(f64, (Assignment, Schedule, Binding))> = None;
    for alloc in enumerate_allocations(dfg, library, bounds.area) {
        // Quick optimistic latency check: even a perfectly parallel design
        // cannot beat the critical path under per-version delays.
        if let Some(cand) = schedule_on_allocation(dfg, library, &alloc, bounds.latency) {
            debug_assert!(cand.2.total_area(library) <= bounds.area);
            let rel = cand.0.design_reliability(library).value();
            if best.as_ref().is_none_or(|(b, _)| rel > *b) {
                best = Some((rel, cand));
            }
        }
    }
    best.map(|(_, d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn pair() -> Dfg {
        DfgBuilder::new("pair")
            .ops(&["a", "b"], OpKind::Add)
            .dep("a", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn enumeration_respects_area_and_coverage() {
        let g = pair();
        let lib = Library::table1();
        let allocs = enumerate_allocations(&g, &lib, 4);
        assert!(!allocs.is_empty());
        for alloc in &allocs {
            let area: u32 = alloc.iter().map(|&(v, n)| lib.version(v).area() * n).sum();
            assert!(area <= 4);
            assert!(alloc.iter().any(|&(_, n)| n > 0));
            // Only adder-class versions appear (graph has no multiplies).
            for &(v, _) in alloc {
                assert_eq!(lib.version(v).class(), rchls_dfg::OpClass::Adder);
            }
        }
        // {1x adder1}, {2x adder1}, {1x adder2}, {1x adder3}, {a1+a2}, ...
        assert!(allocs.len() >= 5);
    }

    #[test]
    fn scheduling_on_single_slow_unit_serializes() {
        let g = pair();
        let lib = Library::table1();
        let a1 = lib.version_by_name("adder1").unwrap();
        let (assign, sched, binding) =
            schedule_on_allocation(&g, &lib, &[(a1, 1)], 4).expect("4 cycles fit two 2cc adds");
        assert_eq!(sched.latency(), 4);
        assert_eq!(binding.instance_count(), 1);
        let delays = assign.delays(&g, &lib);
        binding.assert_valid(&g, &sched, &delays);
        assert!(schedule_on_allocation(&g, &lib, &[(a1, 1)], 3).is_none());
    }

    #[test]
    fn heterogeneous_units_prefer_reliable_when_safe() {
        // Two independent adds, units {adder1, adder2}, plenty of time:
        // both ops should land on the reliable 2cc adder1 only if it is
        // free; the second op goes to adder2 at step 1 or adder1 later.
        let g = DfgBuilder::new("indep")
            .ops(&["a", "b"], OpKind::Add)
            .build()
            .unwrap();
        let lib = Library::table1();
        let a1 = lib.version_by_name("adder1").unwrap();
        let a2 = lib.version_by_name("adder2").unwrap();
        let (assign, sched, _) = schedule_on_allocation(&g, &lib, &[(a1, 1), (a2, 1)], 8).unwrap();
        let delays = assign.delays(&g, &lib);
        sched.validate(&g, &delays).unwrap();
        // At least one op gets the reliable unit.
        let reliable_ops = g.node_ids().filter(|&n| assign.version(n) == a1).count();
        assert!(reliable_ops >= 1);
    }

    #[test]
    fn best_allocation_maps_fir_feasibility_frontier() {
        // Under a *consistent* Table-1 area accounting, FIR at Ld=11 needs
        // at least 9 area units (the paper's Fig. 7 claims (11, 8), but
        // its own resource list sums to 12 — see EXPERIMENTS.md). The
        // allocation search must find the frontier point and reject the
        // point just inside it.
        let g = rchls_workloads::fir16();
        let lib = Library::table1();
        assert!(best_allocation_design(&g, &lib, Bounds::new(11, 8)).is_none());
        let got = best_allocation_design(&g, &lib, Bounds::new(11, 9));
        let (assign, sched, binding) = got.expect("a mixed-version design exists at area 9");
        assert!(sched.latency() <= 11);
        assert!(binding.total_area(&lib) <= 9);
        let delays = assign.delays(&g, &lib);
        binding.assert_valid(&g, &sched, &delays);
        // Heterogeneous mixes beat the cheapest uniform design's product.
        let r = assign.design_reliability(&lib).value();
        assert!(r > 0.969f64.powi(23), "reliability {r}");
    }
}
