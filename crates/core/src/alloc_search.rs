//! Allocation-first design-space search.
//!
//! The Figure-6 greedy descends from the most-reliable assignment and can
//! get stuck when the only feasible designs mix versions in ways no
//! single-group move reaches (the paper's own Figure-7(b) FIR design —
//! two ripple-carry adders, two carry-save multipliers and one Brent-Kung
//! adder — is exactly such a point). This module searches from the other
//! end: enumerate *allocations* (multisets of unit versions whose total
//! area fits the bound), schedule the graph against each allocation with a
//! version-aware list scheduler, and keep the most reliable feasible
//! design. The enumeration is small for realistic libraries (a handful of
//! versions, tens of area units) and is capped defensively.

use crate::bounds::Bounds;
use crate::flow::Diagnostics;
use rchls_bind::{Assignment, Binding, Instance, InstanceId};
use rchls_dfg::{Dfg, NodeId, OpClass};
use rchls_reslib::{Library, VersionId};
use rchls_sched::Schedule;

/// Hard cap on enumerated allocations; beyond this the search declines
/// (returns no candidates) rather than blow up combinatorially.
const MAX_ALLOCATIONS: usize = 200_000;

/// Records the `phase.alloc_micros` histogram when the search returns,
/// covering every exit path (including the early cyclic-graph decline).
struct AllocPhaseTimer<'a>(&'a rchls_telemetry::SpanGuard);

impl Drop for AllocPhaseTimer<'_> {
    fn drop(&mut self) {
        crate::obs::alloc_phase_micros().record(self.0.elapsed_micros());
    }
}

/// Reusable buffers for [`schedule_on_allocation`] and the allocation
/// search — one set serves every enumerated allocation.
#[derive(Debug, Default)]
struct AllocScratch {
    topo: Vec<NodeId>,
    remaining_path: Vec<u32>,
    start: Vec<Option<u32>>,
    finish: Vec<u32>,
    owner: Vec<usize>,
    ready: Vec<NodeId>,
    // Event-driven readiness state: unscheduled-predecessor counts, the
    // latest predecessor finish seen so far, and per-step buckets of
    // nodes that become ready at that step.
    pending_preds: Vec<u32>,
    max_pred_finish: Vec<u32>,
    events: Vec<Vec<NodeId>>,
}

impl AllocScratch {
    /// (Re)computes the cached topological order for `dfg`. Returns
    /// `false` for cyclic graphs.
    fn prepare(&mut self, dfg: &Dfg) -> bool {
        match dfg.topological_order() {
            Ok(order) => {
                self.topo = order;
                true
            }
            Err(_) => false,
        }
    }
}

/// Enumerates all unit allocations (counts per version) with total area
/// within `area_bound`, at least one unit for every class the graph uses,
/// and no more units of a class than the graph has operations of it.
///
/// Truncation at the defensive enumeration cap is **silent** here; use
/// [`enumerate_allocations_with_cap`] when the caller needs to know (and
/// report) that the candidate set is partial.
pub fn enumerate_allocations(
    dfg: &Dfg,
    library: &Library,
    area_bound: u32,
) -> Vec<Vec<(VersionId, u32)>> {
    enumerate_allocations_with_cap(dfg, library, area_bound).0
}

/// [`enumerate_allocations`] plus a flag reporting whether the
/// enumeration cap truncated the set: `true` means at least one
/// area-feasible allocation was *not* enumerated, so any search over the
/// returned set is incomplete and should say so (the synthesis flows
/// record it as [`Diagnostics::alloc_cap_hit`]).
pub fn enumerate_allocations_with_cap(
    dfg: &Dfg,
    library: &Library,
    area_bound: u32,
) -> (Vec<Vec<(VersionId, u32)>>, bool) {
    let used: Vec<OpClass> = OpClass::ALL
        .into_iter()
        .filter(|&c| dfg.count_class(c) > 0)
        .collect();
    let versions: Vec<VersionId> = used
        .iter()
        .flat_map(|&c| library.versions_of(c).map(|(id, _)| id))
        .collect();
    let class_ops = |c: OpClass| -> u32 { u32::try_from(dfg.count_class(c)).unwrap_or(u32::MAX) };
    /// The enumeration's accumulator: the allocations plus whether the
    /// defensive cap truncated them.
    struct Enumeration {
        out: Vec<Vec<(VersionId, u32)>>,
        capped: bool,
    }
    let mut acc = Enumeration {
        out: Vec::new(),
        capped: false,
    };
    let mut counts: Vec<u32> = vec![0; versions.len()];
    fn recurse(
        versions: &[VersionId],
        library: &Library,
        idx: usize,
        area_left: u32,
        counts: &mut Vec<u32>,
        acc: &mut Enumeration,
        class_cap: &dyn Fn(OpClass) -> u32,
    ) {
        if acc.out.len() >= MAX_ALLOCATIONS {
            // Every recursion path ends in a push, so reaching the cap
            // with calls still pending means real allocations are being
            // dropped — record it instead of truncating silently.
            acc.capped = true;
            return;
        }
        if idx == versions.len() {
            acc.out.push(
                versions
                    .iter()
                    .zip(counts.iter())
                    .filter(|(_, &c)| c > 0)
                    .map(|(&v, &c)| (v, c))
                    .collect(),
            );
            return;
        }
        let v = versions[idx];
        let ver = library.version(v);
        let unit = ver.area();
        let cap = (area_left / unit).min(class_cap(ver.class()));
        for c in 0..=cap {
            counts[idx] = c;
            recurse(
                versions,
                library,
                idx + 1,
                area_left - c * unit,
                counts,
                acc,
                class_cap,
            );
        }
        counts[idx] = 0;
    }
    recurse(
        &versions,
        library,
        0,
        area_bound,
        &mut counts,
        &mut acc,
        &|c| class_ops(c),
    );
    let Enumeration { mut out, capped } = acc;
    // Keep only allocations covering every used class.
    out.retain(|alloc| {
        used.iter().all(|&c| {
            alloc
                .iter()
                .any(|&(v, n)| n > 0 && library.version(v).class() == c)
        })
    });
    (out, capped)
}

/// Version-aware list scheduling against a fixed allocation.
///
/// Ready operations are started in priority order (longest remaining path
/// under optimistic per-class minimum delays). Each op picks, among the
/// free units of its class, the most reliable one that still lets its
/// downstream chain finish within the bound; if none looks safe, the
/// fastest free unit is taken.
///
/// Returns `None` when the allocation cannot complete the graph within
/// `latency_bound` under this heuristic.
pub fn schedule_on_allocation(
    dfg: &Dfg,
    library: &Library,
    allocation: &[(VersionId, u32)],
    latency_bound: u32,
) -> Option<(Assignment, Schedule, Binding)> {
    let mut scratch = AllocScratch::default();
    if !scratch.prepare(dfg) {
        return None;
    }
    schedule_on_allocation_in(dfg, library, allocation, latency_bound, &mut scratch)
}

struct Unit {
    version: VersionId,
    free_at: u32, // first step this unit can start a new op
    nodes: Vec<NodeId>,
}

/// [`schedule_on_allocation`] on reusable buffers (`scratch.prepare` must
/// have succeeded for `dfg`). Decision-for-decision identical to the
/// original formulation — only the intermediate allocations and the
/// per-step readiness rescan are gone: instead of re-filtering all nodes
/// every step (O(steps × nodes) even when nothing changed), readiness is
/// event-driven. Each node tracks its count of unscheduled predecessors
/// and the latest predecessor finish; when the count hits zero the node
/// is bucketed at step `max_pred_finish + 1`, the first step the old
/// filter (`all preds started && finished < step`) would have admitted
/// it. The ready list carries deferred nodes forward and is re-sorted by
/// the same `(longest remaining path, node index)` key, so the per-step
/// visit order — and therefore every unit-assignment decision — is
/// byte-identical to the rescan formulation.
fn schedule_on_allocation_in(
    dfg: &Dfg,
    library: &Library,
    allocation: &[(VersionId, u32)],
    latency_bound: u32,
    scratch: &mut AllocScratch,
) -> Option<(Assignment, Schedule, Binding)> {
    let mut units: Vec<Unit> = allocation
        .iter()
        .flat_map(|&(v, n)| {
            (0..n).map(move |_| Unit {
                version: v,
                free_at: 1,
                nodes: Vec::new(),
            })
        })
        .collect();
    if units.is_empty() && !dfg.is_empty() {
        return None;
    }

    // Optimistic remaining-path lengths (per-class minimum delays).
    let min_delay = |n: NodeId| {
        library
            .min_delay(dfg.node(n).class())
            .expect("allocation covers every used class")
    };
    scratch.remaining_path.clear();
    scratch.remaining_path.resize(dfg.node_count(), 0);
    for &n in scratch.topo.iter().rev() {
        let down = dfg
            .succs(n)
            .iter()
            .map(|&s| scratch.remaining_path[s.index()])
            .max()
            .unwrap_or(0);
        scratch.remaining_path[n.index()] = down + min_delay(n);
    }
    let remaining_path = &scratch.remaining_path;

    scratch.start.clear();
    scratch.start.resize(dfg.node_count(), None);
    scratch.finish.clear();
    scratch.finish.resize(dfg.node_count(), 0);
    scratch.owner.clear();
    scratch.owner.resize(dfg.node_count(), 0);
    let (start, finish, owner) = (&mut scratch.start, &mut scratch.finish, &mut scratch.owner);
    let mut remaining = dfg.node_count();
    // The fastest delay actually available per class in this allocation —
    // the deferral horizon: as long as starting *now* on such a unit would
    // still meet the deadline, waiting for one to free up is viable.
    let mut class_min: Vec<(OpClass, u32)> = Vec::new();
    for class in OpClass::ALL {
        let d = units
            .iter()
            .filter(|u| library.version(u.version).class() == class)
            .map(|u| library.version(u.version).delay())
            .min();
        if let Some(d) = d {
            class_min.push((class, d));
        }
    }
    // Event-driven readiness: seed the sources at step 1, then bucket
    // each node when its last predecessor is scheduled.
    let pending = &mut scratch.pending_preds;
    pending.clear();
    pending.extend(dfg.node_ids().map(|n| dfg.preds(n).len() as u32));
    let max_fin = &mut scratch.max_pred_finish;
    max_fin.clear();
    max_fin.resize(dfg.node_count(), 0);
    let buckets = latency_bound as usize + 2;
    if scratch.events.len() < buckets {
        scratch.events.resize_with(buckets, Vec::new);
    }
    for bucket in &mut scratch.events[..buckets] {
        bucket.clear();
    }
    let events = &mut scratch.events;
    events[1].extend(dfg.node_ids().filter(|&n| dfg.preds(n).is_empty()));
    let ready = &mut scratch.ready;
    ready.clear();
    for step in 1..=latency_bound {
        if remaining == 0 {
            break;
        }
        ready.append(&mut events[step as usize]);
        ready.sort_by_key(|&n| (std::cmp::Reverse(remaining_path[n.index()]), n.index()));
        let mut scheduled_any = false;
        for &n in ready.iter() {
            let class = dfg.node(n).class();
            let downstream = remaining_path[n.index()] - min_delay(n);
            // One pass over the units replaces the original
            // filter/retain/min_by pipeline: every comparator ends on the
            // unit index, so each minimum is unique and a strict
            // `is-less` scan finds exactly the element `min_by` would.
            let mut best_safe: Option<usize> = None; // most reliable deadline-safe free unit
            let mut best_fast: Option<usize> = None; // fastest free unit
            for (i, u) in units.iter().enumerate() {
                if u.free_at > step {
                    continue;
                }
                let ver = library.version(u.version);
                if ver.class() != class {
                    continue;
                }
                let fast_better = match best_fast {
                    None => true,
                    Some(b) => (ver.delay(), i) < (library.version(units[b].version).delay(), b),
                };
                if fast_better {
                    best_fast = Some(i);
                }
                if step - 1 + ver.delay() + downstream <= latency_bound {
                    let safe_better = match best_safe {
                        None => true,
                        Some(b) => {
                            let vb = library.version(units[b].version);
                            vb.reliability()
                                .value()
                                .total_cmp(&ver.reliability().value())
                                .then(ver.delay().cmp(&vb.delay()))
                                .then(i.cmp(&b))
                                == std::cmp::Ordering::Less
                        }
                    };
                    if safe_better {
                        best_safe = Some(i);
                    }
                }
            }
            if best_fast.is_none() {
                continue; // no free unit of this class at all
            }
            let pick: Option<usize> = if best_safe.is_some() {
                // Most reliable among deadline-safe units.
                best_safe
            } else {
                // No safe unit is free. If a fast-enough unit exists in the
                // allocation and starting now on it would still meet the
                // deadline, defer the op: forcing it onto a slow unit now
                // would wreck a downstream chain that a one-step wait saves.
                let horizon = class_min
                    .iter()
                    .find(|(c, _)| *c == class)
                    .map(|&(_, d)| d)
                    .expect("class covered by allocation");
                if step - 1 + horizon + downstream <= latency_bound {
                    continue; // wait for a safe unit
                }
                // Doomed either way: grab the fastest to limit the damage.
                best_fast
            };
            let Some(idx) = pick else { continue };
            let delay = library.version(units[idx].version).delay();
            let fin = step + delay - 1;
            start[n.index()] = Some(step);
            finish[n.index()] = fin;
            units[idx].free_at = step + delay;
            units[idx].nodes.push(n);
            owner[n.index()] = idx;
            remaining -= 1;
            scheduled_any = true;
            for &s in dfg.succs(n) {
                pending[s.index()] -= 1;
                max_fin[s.index()] = max_fin[s.index()].max(fin);
                if pending[s.index()] == 0 {
                    // First admissible step: strictly after the latest
                    // predecessor finish (fin >= step, so this bucket is
                    // always in the future — never mutated mid-visit).
                    let at = max_fin[s.index()] + 1;
                    if at <= latency_bound {
                        events[at as usize].push(s);
                    }
                }
            }
        }
        if scheduled_any {
            ready.retain(|&n| start[n.index()].is_none());
        }
    }
    if remaining > 0 || finish.iter().copied().max().unwrap_or(0) > latency_bound {
        return None;
    }

    let assignment = Assignment::from_fn(dfg, library, |n| units[owner[n.index()]].version);
    let delays = assignment.delays(dfg, library);
    let starts: Vec<u32> = start.iter().map(|s| s.unwrap_or(1)).collect();
    let schedule = Schedule::new(starts, &delays);
    schedule.validate(dfg, &delays).ok()?;
    // Compact: drop unused units and renumber owners.
    let mut instances: Vec<Instance> = Vec::new();
    let mut owner_map = vec![InstanceId::new(0); dfg.node_count()];
    for unit in units.into_iter().filter(|u| !u.nodes.is_empty()) {
        let id = InstanceId::new(instances.len() as u32);
        for &n in &unit.nodes {
            owner_map[n.index()] = id;
        }
        instances.push(Instance {
            version: unit.version,
            nodes: unit.nodes,
        });
    }
    let binding = Binding::new(instances, owner_map);
    Some((assignment, schedule, binding))
}

/// Full allocation search: the most reliable feasible design over all
/// enumerated allocations, or `None` if none schedules within the bounds.
///
/// The scan produces **exactly** the design that trying every enumerated
/// allocation in order and keeping the first one attaining the maximum
/// reliability would produce, but visits allocations by descending
/// *capacity-aware reliability upper bound* so almost all of them die to
/// two sound prunes:
///
/// * *Latency lower bound* (exact) — the critical path weighted by each
///   class's fastest delay *available in the allocation* floors every
///   achievable latency; an allocation whose floor exceeds
///   `bounds.latency` would make [`schedule_on_allocation`] return
///   `None` anyway.
/// * *Capacity-aware reliability upper bound* — a unit of version `v`
///   executes at most `⌊Ld / delay(v)⌋` operations within the latency
///   budget, so each class's most reliable versions can cover only that
///   many nodes; the bound gives every node the best version capacity
///   admits. Because the bound is evaluated in floating point, the prune
///   keeps a conservative relative margin (scaled to the node count's
///   worst-case rounding error), so an allocation is skipped only when
///   it *provably* cannot reach the incumbent's reliability — ties and
///   the original scan's first-index tie-breaking are unaffected.
pub fn best_allocation_design(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
) -> Option<(Assignment, Schedule, Binding)> {
    let mut diagnostics = Diagnostics::default();
    best_allocation_design_diag(dfg, library, bounds, &mut diagnostics)
}

/// [`best_allocation_design`] that also records search-quality facts in
/// `diagnostics` — currently whether the enumeration cap truncated the
/// candidate set ([`Diagnostics::alloc_cap_hit`]), so a capped search is
/// reported instead of silently presenting a partial optimum as the
/// global one.
pub fn best_allocation_design_diag(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    diagnostics: &mut Diagnostics,
) -> Option<(Assignment, Schedule, Binding)> {
    let span = rchls_telemetry::span!(timed: "alloc");
    let _record_on_exit = AllocPhaseTimer(&span);
    let mut scratch = AllocScratch::default();
    if !scratch.prepare(dfg) {
        return None;
    }
    let slots = OpClass::ALL.len();
    let class_slot = |c: OpClass| -> usize {
        OpClass::ALL
            .iter()
            .position(|&x| x == c)
            .expect("every class is listed in OpClass::ALL")
    };
    let class_nodes: Vec<u64> = OpClass::ALL
        .iter()
        .map(|&c| dfg.count_class(c) as u64)
        .collect();
    let (allocations, capped) = enumerate_allocations_with_cap(dfg, library, bounds.area);
    diagnostics.alloc_cap_hit |= capped;

    // Per-allocation metadata, computed once: the capacity-aware
    // reliability upper bound and the per-class fastest delay.
    let mut min_delay = vec![u32::MAX; slots];
    // Per class: (reliability, node capacity) per allocated version.
    let mut caps: Vec<Vec<(f64, u64)>> = vec![Vec::new(); slots];
    let mut metas: Vec<(f64, usize)> = Vec::with_capacity(allocations.len());
    let mut class_mins: Vec<[u32; 8]> = Vec::with_capacity(allocations.len());
    debug_assert!(slots <= 8, "class_mins uses a fixed-width row");
    for (idx, alloc) in allocations.iter().enumerate() {
        min_delay.iter_mut().for_each(|d| *d = u32::MAX);
        caps.iter_mut().for_each(Vec::clear);
        for &(v, count) in alloc {
            if count == 0 {
                continue;
            }
            let ver = library.version(v);
            let slot = class_slot(ver.class());
            min_delay[slot] = min_delay[slot].min(ver.delay());
            let capacity = u64::from(count) * u64::from(bounds.latency / ver.delay().max(1));
            caps[slot].push((ver.reliability().value(), capacity));
        }
        // Give every node the most reliable version capacity admits.
        let mut ub = 1.0f64;
        for (slot, nodes) in class_nodes.iter().enumerate() {
            let mut left = *nodes;
            if left == 0 {
                continue;
            }
            caps[slot].sort_by(|(ra, _), (rb, _)| rb.total_cmp(ra));
            for &(rel, capacity) in &caps[slot] {
                let here = left.min(capacity);
                ub *= rel.powi(i32::try_from(here).unwrap_or(i32::MAX));
                left -= here;
                if left == 0 {
                    break;
                }
            }
            if left > 0 {
                // Not enough unit capacity to run every node: the list
                // scheduler cannot finish in time, so the allocation is
                // infeasible outright.
                ub = 0.0;
                break;
            }
        }
        metas.push((ub, idx));
        let mut row = [u32::MAX; 8];
        row[..slots].copy_from_slice(&min_delay);
        class_mins.push(row);
    }
    // Highest bound first; enumeration index breaks ties so the original
    // scan's tie winner (smallest index) is met first.
    metas.sort_by(|(ua, ia), (ub, ib)| ub.total_cmp(ua).then(ia.cmp(ib)));

    // Worst-case relative rounding slack of the bound product vs the
    // exact fold `design_reliability` performs.
    let margin = 1.0 - (dfg.node_count() as f64 + 8.0) * 4.0 * f64::EPSILON;
    let mut longest = vec![0u32; dfg.node_count()];
    let mut best: Option<(f64, usize, (Assignment, Schedule, Binding))> = None;
    // Set once the incumbent assigns every node its class's most
    // reliable version. The serial-product fold is monotone in each
    // factor (replacing a factor with a larger one never decreases the
    // rounded product), so no assignment evaluates above that
    // incumbent's reliability — any later allocation can at best *tie*,
    // and a tie only wins the (max reliability, first index) rule from a
    // smaller enumeration index.
    let mut best_is_ceiling = false;
    for &(ub, idx) in &metas {
        if let Some((brel, bidx, _)) = &best {
            // Incumbent prune: sound because `ub / margin` dominates
            // every reliability the allocation's assignments can
            // evaluate to, rounding included. Skips only strict losers,
            // so the final (max reliability, first index) winner is
            // unchanged.
            if ub < brel * margin {
                continue;
            }
            // Ceiling prune: the incumbent already attains the global
            // assignment-product maximum, so only earlier-enumerated
            // allocations (which could tie and take the first-index
            // rule) still need evaluating. This is what stops slack
            // area bounds from scheduling tens of thousands of
            // capacity-saturated lookalikes.
            if best_is_ceiling && idx > *bidx {
                continue;
            }
        }
        // Exact latency lower bound.
        let mins = &class_mins[idx];
        let mut lb = 0u32;
        for &n in &scratch.topo {
            let down = dfg
                .preds(n)
                .iter()
                .map(|&p| longest[p.index()])
                .max()
                .unwrap_or(0);
            let d = mins[class_slot(dfg.node(n).class())];
            debug_assert!(d != u32::MAX, "allocation covers every used class");
            longest[n.index()] = down + d;
            lb = lb.max(longest[n.index()]);
        }
        if lb > bounds.latency {
            continue;
        }
        if let Some(cand) = schedule_on_allocation_in(
            dfg,
            library,
            &allocations[idx],
            bounds.latency,
            &mut scratch,
        ) {
            debug_assert!(cand.2.total_area(library) <= bounds.area);
            let rel = cand.0.design_reliability(library).value();
            let better = best
                .as_ref()
                .is_none_or(|(brel, bidx, _)| rel > *brel || (rel == *brel && idx < *bidx));
            if better {
                best_is_ceiling = cand
                    .0
                    .iter()
                    .all(|(n, v)| Some(v) == library.most_reliable_id(dfg.node(n).class()));
                best = Some((rel, idx, cand));
            }
        }
    }
    best.map(|(.., d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn pair() -> Dfg {
        DfgBuilder::new("pair")
            .ops(&["a", "b"], OpKind::Add)
            .dep("a", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn enumeration_respects_area_and_coverage() {
        let g = pair();
        let lib = Library::table1();
        let allocs = enumerate_allocations(&g, &lib, 4);
        assert!(!allocs.is_empty());
        for alloc in &allocs {
            let area: u32 = alloc.iter().map(|&(v, n)| lib.version(v).area() * n).sum();
            assert!(area <= 4);
            assert!(alloc.iter().any(|&(_, n)| n > 0));
            // Only adder-class versions appear (graph has no multiplies).
            for &(v, _) in alloc {
                assert_eq!(lib.version(v).class(), OpClass::Adder);
            }
        }
        // {1x adder1}, {2x adder1}, {1x adder2}, {1x adder3}, {a1+a2}, ...
        assert!(allocs.len() >= 5);
    }

    #[test]
    fn scheduling_on_single_slow_unit_serializes() {
        let g = pair();
        let lib = Library::table1();
        let a1 = lib.version_by_name("adder1").unwrap();
        let (assign, sched, binding) =
            schedule_on_allocation(&g, &lib, &[(a1, 1)], 4).expect("4 cycles fit two 2cc adds");
        assert_eq!(sched.latency(), 4);
        assert_eq!(binding.instance_count(), 1);
        let delays = assign.delays(&g, &lib);
        binding.assert_valid(&g, &sched, &delays);
        assert!(schedule_on_allocation(&g, &lib, &[(a1, 1)], 3).is_none());
    }

    #[test]
    fn heterogeneous_units_prefer_reliable_when_safe() {
        // Two independent adds, units {adder1, adder2}, plenty of time:
        // both ops should land on the reliable 2cc adder1 only if it is
        // free; the second op goes to adder2 at step 1 or adder1 later.
        let g = DfgBuilder::new("indep")
            .ops(&["a", "b"], OpKind::Add)
            .build()
            .unwrap();
        let lib = Library::table1();
        let a1 = lib.version_by_name("adder1").unwrap();
        let a2 = lib.version_by_name("adder2").unwrap();
        let (assign, sched, _) = schedule_on_allocation(&g, &lib, &[(a1, 1), (a2, 1)], 8).unwrap();
        let delays = assign.delays(&g, &lib);
        sched.validate(&g, &delays).unwrap();
        // At least one op gets the reliable unit.
        let reliable_ops = g.node_ids().filter(|&n| assign.version(n) == a1).count();
        assert!(reliable_ops >= 1);
    }

    #[test]
    fn enumeration_cap_is_reported_not_silent() {
        // Small graphs under tight bounds never hit the cap...
        let g = pair();
        let lib = Library::table1();
        let (allocs, capped) = enumerate_allocations_with_cap(&g, &lib, 4);
        assert!(!capped);
        assert!(!allocs.is_empty());
        // ... but a wide graph under an absurd area budget exceeds the
        // combinatorial cap, and the flag must say so (the allocation
        // search surfaces it as `Diagnostics::alloc_cap_hit`).
        let wide = rchls_workloads::random_layered_dfg(&rchls_workloads::RandomDfgConfig {
            nodes: 48,
            layers: 4,
            seed: 11,
            ..Default::default()
        });
        let (allocs, capped) = enumerate_allocations_with_cap(&wide, &lib, 10_000);
        assert!(capped, "{} allocations", allocs.len());
        assert!(allocs.len() <= MAX_ALLOCATIONS);
        // The non-reporting wrapper still returns the same truncated set.
        assert_eq!(allocs, enumerate_allocations(&wide, &lib, 10_000));
    }

    #[test]
    fn pruned_search_matches_the_naive_full_scan() {
        // The documented contract: the bound-guided scan returns exactly
        // the design the naive "schedule every allocation in enumeration
        // order, keep the first one attaining the maximum reliability"
        // scan returns. Slack bounds exercise the ceiling prune (the
        // all-most-reliable incumbent), tight bounds the margin prune.
        let lib = Library::table1();
        for (nodes, layers, seed) in [(10usize, 3usize, 0u64), (14, 4, 3), (12, 3, 7)] {
            let g = rchls_workloads::random_layered_dfg(&rchls_workloads::RandomDfgConfig {
                nodes,
                layers,
                seed,
                ..Default::default()
            });
            for bounds in [
                Bounds::new(layers as u32 + 1, 4),
                Bounds::new(layers as u32 + 3, 8),
                Bounds::new(2 * layers as u32 + 4, 16),
            ] {
                let naive = {
                    let mut best: Option<(f64, usize, (Assignment, Schedule, Binding))> = None;
                    for (idx, alloc) in enumerate_allocations(&g, &lib, bounds.area)
                        .iter()
                        .enumerate()
                    {
                        if let Some(cand) = schedule_on_allocation(&g, &lib, alloc, bounds.latency)
                        {
                            let rel = cand.0.design_reliability(&lib).value();
                            if best.as_ref().is_none_or(|(brel, bidx, _)| {
                                rel > *brel || (rel == *brel && idx < *bidx)
                            }) {
                                best = Some((rel, idx, cand));
                            }
                        }
                    }
                    best.map(|(.., d)| d)
                };
                let pruned = best_allocation_design(&g, &lib, bounds);
                assert_eq!(pruned, naive, "{nodes}x{layers}@{seed} at {bounds}");
            }
        }
    }

    #[test]
    fn diag_variant_mirrors_plain_search_and_records_completeness() {
        let g = pair();
        let lib = Library::table1();
        let bounds = Bounds::new(4, 4);
        let mut diagnostics = Diagnostics::default();
        let diag = best_allocation_design_diag(&g, &lib, bounds, &mut diagnostics);
        let plain = best_allocation_design(&g, &lib, bounds);
        assert_eq!(diag, plain);
        // An uncapped enumeration reports a complete search.
        assert!(!diagnostics.alloc_cap_hit);
    }

    #[test]
    fn best_allocation_maps_fir_feasibility_frontier() {
        // Under a *consistent* Table-1 area accounting, FIR at Ld=11 needs
        // at least 9 area units (the paper's Fig. 7 claims (11, 8), but
        // its own resource list sums to 12 — see EXPERIMENTS.md). The
        // allocation search must find the frontier point and reject the
        // point just inside it.
        let g = rchls_workloads::fir16();
        let lib = Library::table1();
        assert!(best_allocation_design(&g, &lib, Bounds::new(11, 8)).is_none());
        let got = best_allocation_design(&g, &lib, Bounds::new(11, 9));
        let (assign, sched, binding) = got.expect("a mixed-version design exists at area 9");
        assert!(sched.latency() <= 11);
        assert!(binding.total_area(&lib) <= 9);
        let delays = assign.delays(&g, &lib);
        binding.assert_valid(&g, &sched, &delays);
        // Heterogeneous mixes beat the cheapest uniform design's product.
        let r = assign.design_reliability(&lib).value();
        assert!(r > 0.969f64.powi(23), "reliability {r}");
    }
}
