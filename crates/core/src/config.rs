//! Synthesizer configuration: the design-choice knobs DESIGN.md's
//! ablation benches exercise.

use serde::{Deserialize, Serialize};

/// Which time-constrained scheduler the synthesizer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's partition-density scheduler (default).
    #[default]
    Density,
    /// Force-directed scheduling (ablation alternative).
    ForceDirected,
}

/// Which binder packs operations onto unit instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BinderKind {
    /// Left-edge interval packing (default; optimal per version).
    #[default]
    LeftEdge,
    /// Greedy conflict-graph coloring (ablation alternative).
    Coloring,
}

/// How the latency-reduction loop picks its victim node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VictimPolicy {
    /// The paper's rule: the critical-path node with the highest delay
    /// (line 9 of Figure 6).
    #[default]
    CriticalMaxDelay,
    /// Among critical-path nodes with a faster version, pick the one whose
    /// substitution costs the least reliability (ablation alternative).
    MinReliabilityLoss,
}

/// Whether a reliability-improving refinement pass runs after the
/// Figure-6 loops have met both bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Refinement {
    /// Greedily upgrade operations back to more reliable versions while
    /// both bounds still hold (default). This is an extension beyond the
    /// paper's one-pass greedy: Figure 6 only ever *degrades* versions, so
    /// it can overshoot (e.g. end with a uniformly type-2 design when a
    /// mixed design of equal area is strictly more reliable).
    #[default]
    Greedy,
    /// Strict Figure-6 behaviour: stop as soon as the bounds are met.
    Off,
}

/// The full knob set for [`crate::Synthesizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Scheduler choice.
    pub scheduler: SchedulerKind,
    /// Binder choice.
    pub binder: BinderKind,
    /// Latency-loop victim selection policy.
    pub victim: VictimPolicy,
    /// Post-pass refinement policy.
    pub refine: Refinement,
}

impl SynthConfig {
    /// The paper's strict Figure-6 configuration (density scheduler,
    /// left-edge binder, max-delay victim rule, no refinement pass).
    #[must_use]
    pub fn paper() -> SynthConfig {
        SynthConfig {
            refine: Refinement::Off,
            ..SynthConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_plus_refinement() {
        let c = SynthConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::Density);
        assert_eq!(c.binder, BinderKind::LeftEdge);
        assert_eq!(c.victim, VictimPolicy::CriticalMaxDelay);
        assert_eq!(c.refine, Refinement::Greedy);
        assert_eq!(SynthConfig::paper().refine, Refinement::Off);
    }
}
