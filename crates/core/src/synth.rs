//! The paper's Figure-6 algorithm: reliability-centric allocation,
//! scheduling and binding under latency and area bounds, composed from
//! the flow registry's passes.

use crate::bounds::Bounds;
use crate::design::Design;
use crate::error::SynthesisError;
use crate::flow::{Diagnostics, FlowSpec, FlowState, ResolvedFlow, SynthReport};
use crate::obs;
use crate::scratch::{ScratchPool, SynthScratch};
use rchls_bind::{Assignment, Binding};
use rchls_dfg::{Dfg, NodeId};
use rchls_reslib::{Library, VersionId};
use rchls_sched::Schedule;
use rchls_telemetry::span;
use std::cell::{Cell, RefCell};
use std::collections::HashSet;

/// Per-phase wall-time and call accumulators, harvested into
/// [`Diagnostics`] when a report is assembled.
#[derive(Debug, Default)]
struct PhaseTimers {
    sched_micros: Cell<u64>,
    bind_micros: Cell<u64>,
    sched_calls: Cell<u32>,
    bind_calls: Cell<u32>,
}

/// The reliability-centric synthesizer (`Find_Design` in Figure 6).
///
/// The algorithm proceeds in three phases:
///
/// 1. **Initial solution** (lines 3–6): every operation gets the *most
///    reliable* version of its class — the reliability-optimal but possibly
///    bound-violating starting point.
/// 2. **Latency loop** (lines 7–12): while the critical path exceeds `Ld`,
///    pick the victim operation on the critical path (per the flow's
///    [`VictimPolicy`](crate::flow::VictimPolicy)) and move it to a faster
///    — typically less reliable — version.
/// 3. **Area loop** (lines 15–28): first exploit any latency slack by
///    rescheduling at a larger latency so more operations share units;
///    then, while area still exceeds `Ad`, move the biggest-area victim
///    (together with every operation sharing its unit) to a smaller
///    version, rejecting moves that would break the latency bound.
///
/// The flow's [`RefinePass`](crate::flow::RefinePass) then runs on the
/// outcome (the default `"greedy"` pass pools alternative starts and
/// upgrades versions; `"off"` keeps the strict Figure-6 result).
///
/// If both loops exhaust their alternatives the design space is empty and
/// [`SynthesisError::NoSolution`] is returned (line 29).
#[derive(Debug)]
pub struct Synthesizer<'a> {
    dfg: &'a Dfg,
    library: &'a Library,
    spec: FlowSpec,
    flow: ResolvedFlow,
    /// Preallocated scheduling/binding/delay buffers, reused by every
    /// pass invocation this synthesizer makes.
    scratch: RefCell<SynthScratch>,
    /// Where the scratch came from (and returns to on drop), if pooled.
    pool: Option<&'a ScratchPool>,
    /// Session-interned uniform start pools, when running under an
    /// engine session (see [`crate::engine::StartsCache`]).
    starts: Option<&'a crate::engine::StartsCache>,
    timers: PhaseTimers,
}

impl Drop for Synthesizer<'_> {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            pool.release(std::mem::take(&mut *self.scratch.borrow_mut()));
        }
    }
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer with the default flow: the paper's
    /// scheduler/binder/victim passes plus the greedy refinement pass
    /// (see [`FlowSpec::default`]).
    #[must_use]
    pub fn new(dfg: &'a Dfg, library: &'a Library) -> Synthesizer<'a> {
        Synthesizer::with_flow(dfg, library, &FlowSpec::default())
            .expect("the default flow names built-in passes")
    }

    /// Creates a synthesizer composing the passes `spec` names.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::UnknownPass`] when a slot names an id the
    /// registry doesn't know.
    pub fn with_flow(
        dfg: &'a Dfg,
        library: &'a Library,
        spec: &FlowSpec,
    ) -> Result<Synthesizer<'a>, SynthesisError> {
        Synthesizer::with_flow_pooled(dfg, library, spec, None)
    }

    /// [`Synthesizer::with_flow`] borrowing its scratch arenas from a
    /// session [`ScratchPool`] (and returning them when dropped), so
    /// batch jobs and sweep points stop re-allocating per point.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::UnknownPass`] when a slot names an id the
    /// registry doesn't know.
    pub fn with_flow_pooled(
        dfg: &'a Dfg,
        library: &'a Library,
        spec: &FlowSpec,
        pool: Option<&'a ScratchPool>,
    ) -> Result<Synthesizer<'a>, SynthesisError> {
        let scratch = pool.map_or_else(SynthScratch::default, ScratchPool::acquire);
        Ok(Synthesizer {
            dfg,
            library,
            spec: spec.clone(),
            flow: spec.resolve()?,
            scratch: RefCell::new(scratch),
            pool,
            starts: None,
            timers: PhaseTimers::default(),
        })
    }

    /// A synthesizer wired to everything a [`SynthRequest`] carries: the
    /// flow, the session scratch pool, and the session starts cache.
    /// This is the constructor strategies use.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::UnknownPass`] when a slot names an id the
    /// registry doesn't know.
    ///
    /// [`SynthRequest`]: crate::SynthRequest
    pub fn for_request(
        request: &crate::flow::SynthRequest<'a>,
    ) -> Result<Synthesizer<'a>, SynthesisError> {
        let mut synth = Synthesizer::with_flow_pooled(
            request.dfg,
            request.library,
            &request.flow,
            request.scratch_pool(),
        )?;
        synth.starts = request.starts_cache();
        Ok(synth)
    }

    /// The graph being synthesized.
    #[must_use]
    pub fn dfg(&self) -> &Dfg {
        self.dfg
    }

    /// The library in use.
    #[must_use]
    pub fn library(&self) -> &Library {
        self.library
    }

    /// The flow spec this synthesizer was built from.
    #[must_use]
    pub fn flow(&self) -> &FlowSpec {
        &self.spec
    }

    /// Runs the synthesis flow, returning the most reliable design found
    /// within `bounds` (the design half of [`synthesize_report`]).
    ///
    /// With the `"off"` refine pass (i.e. [`FlowSpec::paper`]) this is
    /// the strict Figure-6 greedy. With the default `"greedy"` pass the
    /// Figure-6 result is pooled with every *uniform* single-version
    /// assignment that meets the bounds, and the best feasible starting
    /// point is improved by greedy version upgrades — a portfolio that
    /// recovers the mixed-version optima the one-pass greedy can miss
    /// (e.g. the paper's own Figure-7(b) FIR design).
    ///
    /// [`synthesize_report`]: Synthesizer::synthesize_report
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::Library`] if the library lacks versions for a
    ///   class the graph uses;
    /// * [`SynthesisError::NoSolution`] if no version selection meets the
    ///   bounds;
    /// * [`SynthesisError::Schedule`] if the graph is malformed (cyclic).
    pub fn synthesize(&self, bounds: Bounds) -> Result<Design, SynthesisError> {
        self.synthesize_report(bounds).map(|r| r.design)
    }

    /// Runs the synthesis flow and returns the design together with the
    /// [`Diagnostics`] trace of the search.
    ///
    /// # Errors
    ///
    /// Same contract as [`Synthesizer::synthesize`].
    pub fn synthesize_report(&self, bounds: Bounds) -> Result<SynthReport, SynthesisError> {
        let synth_span = span!(timed: "synth");
        let mut diagnostics = Diagnostics::default();
        let figure6 = {
            let _figure6_span = span!("figure6");
            self.figure6(bounds, &mut diagnostics)
        };
        let refine = std::sync::Arc::clone(&self.flow.refine);
        let refine_span = span!(timed: "refine");
        let state = refine.run(self, figure6, bounds, &mut diagnostics)?;
        let refine_micros = refine_span.elapsed_micros();
        drop(refine_span);
        diagnostics.refine_micros += refine_micros;
        obs::refine_phase_micros().record(refine_micros);
        let replication = vec![1u32; state.binding.instance_count()];
        let design = Design::assemble(
            self.dfg,
            self.library,
            state.assignment,
            state.schedule,
            state.binding,
            replication,
        );
        self.harvest_timers(&mut diagnostics);
        diagnostics.wall_time_micros = synth_span.elapsed_micros();
        obs::synth_phase_micros().record(diagnostics.wall_time_micros);
        Ok(SynthReport {
            design,
            diagnostics,
        })
    }

    /// Moves the accumulated scheduler/binder phase timings and call
    /// counts into `diagnostics`, resetting the accumulators (so a
    /// synthesizer reused for several runs attributes each run's phases
    /// to its own report).
    pub(crate) fn harvest_timers(&self, diagnostics: &mut Diagnostics) {
        diagnostics.sched_micros += self.timers.sched_micros.take();
        diagnostics.bind_micros += self.timers.bind_micros.take();
        diagnostics.sched_calls += self.timers.sched_calls.take();
        diagnostics.bind_calls += self.timers.bind_calls.take();
    }

    /// The deterministic `(scheduler, binder)` pass-call counts booked so
    /// far — the session starts cache captures deltas of these on a miss
    /// and replays them on hits.
    pub(crate) fn pass_call_counts(&self) -> (u32, u32) {
        (self.timers.sched_calls.get(), self.timers.bind_calls.get())
    }

    /// Books pass calls answered from a session cache: the deterministic
    /// call *counts* a fresh computation would have made (keeping
    /// diagnostics byte-identical across cache states) without any wall
    /// time, which genuinely wasn't spent.
    pub(crate) fn replay_pass_calls(&self, sched: u32, bind: u32) {
        self.timers
            .sched_calls
            .set(self.timers.sched_calls.get() + sched);
        self.timers
            .bind_calls
            .set(self.timers.bind_calls.get() + bind);
    }

    /// The minimum (critical-path) latency of `assignment`, computed on
    /// the scratch arena without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Schedule`] if the graph is cyclic.
    pub(crate) fn min_latency(&self, assignment: &Assignment) -> Result<u32, SynthesisError> {
        let mut guard = self.scratch.borrow_mut();
        let scratch = &mut *guard;
        scratch.delays.fill_from_fn(self.dfg, |n| {
            self.library.version(assignment.version(n)).delay()
        });
        Ok(scratch.sched.asap_latency(self.dfg, &scratch.delays)?)
    }

    /// Every uniform one-version-per-class assignment (no feasibility
    /// filtering — callers check latency/area under their own scheduling
    /// regime).
    pub(crate) fn uniform_assignments(&self) -> Result<Vec<Assignment>, SynthesisError> {
        use rchls_dfg::OpClass;
        // Per-class version choices (only for classes the graph uses).
        let mut per_class: Vec<(OpClass, Vec<VersionId>)> = Vec::new();
        for class in OpClass::ALL {
            if self.dfg.count_class(class) > 0 {
                let vs: Vec<VersionId> =
                    self.library.versions_of(class).map(|(id, _)| id).collect();
                if vs.is_empty() {
                    return Err(SynthesisError::Library(rchls_reslib::LibraryError::Empty));
                }
                per_class.push((class, vs));
            }
        }
        if per_class.is_empty() {
            return Ok(Vec::new());
        }
        // Cartesian product over the (at most two, for the paper library)
        // used classes.
        let mut combos: Vec<Vec<(OpClass, VersionId)>> = vec![Vec::new()];
        for (class, vs) in &per_class {
            combos = combos
                .into_iter()
                .flat_map(|prefix| {
                    vs.iter().map(move |&v| {
                        let mut next = prefix.clone();
                        next.push((*class, v));
                        next
                    })
                })
                .collect();
        }
        Ok(combos
            .into_iter()
            .map(|combo| {
                Assignment::from_fn(self.dfg, self.library, |n| {
                    let class = self.dfg.node(n).class();
                    combo
                        .iter()
                        .find(|(c, _)| *c == class)
                        .map(|&(_, v)| v)
                        .expect("combo covers every used class")
                })
            })
            .collect())
    }

    /// Every uniform one-version-per-class assignment that meets both
    /// bounds, each already scheduled and bound at the full latency
    /// budget — answered from the session
    /// [`StartsCache`](crate::engine::StartsCache) when one is attached
    /// (the pool depends only on the graph, library, bounds, and
    /// scheduler/binder slots, so sweeps stop recomputing identical
    /// pools), computed fresh otherwise.
    pub(crate) fn uniform_feasible_starts(
        &self,
        bounds: Bounds,
    ) -> Result<Vec<FlowState>, SynthesisError> {
        match self.starts {
            Some(cache) => cache.get_or_compute(self, bounds),
            None => self.uniform_feasible_starts_fresh(bounds),
        }
    }

    /// [`Synthesizer::uniform_feasible_starts`] bypassing any session
    /// cache: always schedules and binds every uniform assignment. The
    /// naive reference passes use this so the golden equivalence suites
    /// prove the interned pools against fresh recomputation.
    pub(crate) fn uniform_feasible_starts_fresh(
        &self,
        bounds: Bounds,
    ) -> Result<Vec<FlowState>, SynthesisError> {
        let mut out = Vec::new();
        for assignment in self.uniform_assignments()? {
            if self.min_latency(&assignment)? > bounds.latency {
                continue;
            }
            let (schedule, binding) = self.schedule_and_bind(&assignment, bounds.latency)?;
            if binding.total_area(self.library) <= bounds.area {
                out.push(FlowState {
                    assignment,
                    schedule,
                    binding,
                });
            }
        }
        Ok(out)
    }

    /// The best allocation-first design for the refine portfolio —
    /// answered from the session [`StartsCache`](crate::engine::StartsCache)
    /// when one is attached (the search depends only on the graph,
    /// library, and bounds), computed fresh otherwise. Either way the
    /// search's completeness flag lands in `diagnostics`.
    pub(crate) fn alloc_design(
        &self,
        bounds: Bounds,
        diagnostics: &mut Diagnostics,
    ) -> Option<(Assignment, Schedule, Binding)> {
        match self.starts {
            Some(cache) => cache.alloc_design(self, bounds, diagnostics),
            None => crate::alloc_search::best_allocation_design_diag(
                self.dfg,
                self.library,
                bounds,
                diagnostics,
            ),
        }
    }

    /// The strict Figure-6 greedy (lines 3–29).
    fn figure6(
        &self,
        bounds: Bounds,
        diagnostics: &mut Diagnostics,
    ) -> Result<FlowState, SynthesisError> {
        self.dfg
            .validate()
            .map_err(rchls_sched::ScheduleError::from)?;
        // Line 3: allocate the most reliable resource to each node.
        let mut assignment = Assignment::uniform(self.dfg, self.library)?;

        // Lines 7-12: latency-reduction loop.
        loop {
            let min_latency = self.min_latency(&assignment)?;
            if min_latency <= bounds.latency {
                break;
            }
            diagnostics.loop_iterations += 1;
            let cp = {
                // `min_latency` left the assignment's delays in the
                // scratch buffer.
                let guard = self.scratch.borrow();
                self.dfg
                    .critical_path(|n| guard.delays.get(n))
                    .map_err(rchls_sched::ScheduleError::from)?
            };
            let Some((victim, faster)) =
                self.pick_latency_victim(&assignment, &cp.nodes, diagnostics)
            else {
                return Err(SynthesisError::NoSolution {
                    reason: format!(
                        "critical path needs {min_latency} cycles > bound {} and no faster \
                         versions remain",
                        bounds.latency
                    ),
                });
            };
            assignment.set(victim, faster);
            diagnostics.victim_moves += 1;
        }

        // Lines 4-6 (for the now latency-feasible assignment): schedule at
        // the minimum achievable latency and bind.
        let mut target = self.min_latency(&assignment)?.max(1);
        let (mut schedule, mut binding) = self.schedule_and_bind(&assignment, target)?;
        let mut area = binding.total_area(self.library);

        // Lines 15-21: exploit latency slack to share more units.
        while area > bounds.area && target < bounds.latency {
            diagnostics.loop_iterations += 1;
            target += 1;
            let (s, b) = self.schedule_and_bind(&assignment, target)?;
            schedule = s;
            binding = b;
            area = binding.total_area(self.library);
        }

        // Lines 23-28: area-reduction loop via smaller versions.
        let mut tried: HashSet<(NodeId, VersionId)> = HashSet::new();
        while area > bounds.area {
            diagnostics.loop_iterations += 1;
            let Some((sharers, version, key)) =
                self.pick_area_victim(&assignment, &binding, &tried)
            else {
                return Err(SynthesisError::NoSolution {
                    reason: format!(
                        "area {area} exceeds bound {} and no smaller versions remain",
                        bounds.area
                    ),
                });
            };
            tried.insert(key);
            let mut candidate = assignment.clone();
            for &n in &sharers {
                candidate.set(n, version);
            }
            let cand_min = self.min_latency(&candidate)?;
            if cand_min > bounds.latency {
                diagnostics.rejected_moves += 1;
                continue; // this version would break the latency bound
            }
            let cand_target = target.max(cand_min).min(bounds.latency);
            let (s, b) = self.schedule_and_bind(&candidate, cand_target)?;
            let a = b.total_area(self.library);
            if a < area {
                assignment = candidate;
                schedule = s;
                binding = b;
                area = a;
                target = cand_target;
                tried.clear(); // new assignment reopens previously useless moves
                diagnostics.victim_moves += 1;
            } else {
                diagnostics.rejected_moves += 1;
            }
        }

        // Line 29: final feasibility check.
        if schedule.latency() > bounds.latency || area > bounds.area {
            return Err(SynthesisError::NoSolution {
                reason: format!(
                    "final design (L={}, A={area}) violates bounds ({bounds})",
                    schedule.latency()
                ),
            });
        }
        Ok(FlowState {
            assignment,
            schedule,
            binding,
        })
    }

    /// Schedules (per the flow's scheduler) and binds (per the flow's
    /// binder) at the given latency — the primitive custom
    /// [`RefinePass`](crate::flow::RefinePass) implementations build on.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Schedule`] when the assignment cannot be
    /// scheduled within `latency`.
    pub fn schedule_and_bind(
        &self,
        assignment: &Assignment,
        latency: u32,
    ) -> Result<(Schedule, Binding), SynthesisError> {
        let mut guard = self.scratch.borrow_mut();
        let scratch = &mut *guard;
        scratch.delays.fill_from_fn(self.dfg, |n| {
            self.library.version(assignment.version(n)).delay()
        });
        let sched_span = span!(timed: "sched");
        let schedule = self.flow.scheduler.schedule_with(
            self.dfg,
            &scratch.delays,
            latency,
            &mut scratch.sched,
        )?;
        let sched_micros = sched_span.elapsed_micros();
        drop(sched_span);
        obs::sched_phase_micros().record(sched_micros);
        self.timers
            .sched_micros
            .set(self.timers.sched_micros.get() + sched_micros);
        self.timers
            .sched_calls
            .set(self.timers.sched_calls.get() + 1);
        let bind_span = span!(timed: "bind");
        let binding = self.flow.binder.bind_with(
            self.dfg,
            &schedule,
            assignment,
            self.library,
            &mut scratch.bind,
        );
        let bind_micros = bind_span.elapsed_micros();
        drop(bind_span);
        obs::bind_phase_micros().record(bind_micros);
        self.timers
            .bind_micros
            .set(self.timers.bind_micros.get() + bind_micros);
        self.timers.bind_calls.set(self.timers.bind_calls.get() + 1);
        Ok((schedule, binding))
    }

    /// Line 9-10: collect the critical-path candidates and let the flow's
    /// victim policy pick the operation to move to its next-faster
    /// version.
    fn pick_latency_victim(
        &self,
        assignment: &Assignment,
        critical_path: &[NodeId],
        diagnostics: &mut Diagnostics,
    ) -> Option<(NodeId, VersionId)> {
        let candidates: Vec<(NodeId, VersionId)> = critical_path
            .iter()
            .filter_map(|&n| {
                let alts = self.library.faster_alternatives(assignment.version(n));
                alts.first().map(|&v| (n, v))
            })
            .collect();
        diagnostics
            .candidate_pool_sizes
            .push(u32::try_from(candidates.len()).unwrap_or(u32::MAX));
        self.flow
            .victim
            .pick(self.dfg, self.library, assignment, &candidates)
    }

    /// Lines 25-26: pick the biggest-area victim, its co-sharing nodes, and
    /// the version to move them all to. Returns the sharer set, the new
    /// version, and the `(node, version)` key for the tried-set.
    ///
    /// One widening relative to the paper's text: candidate versions are
    /// *all* other versions of the class, not only those with smaller unit
    /// area. Rebinding after a swap can consolidate instances, so a move to
    /// a larger-unit version sometimes shrinks the *total* area (e.g. the
    /// last two ops on a lone ripple-carry adder joining an existing
    /// Brent-Kung unit). The caller still accepts a move only when the
    /// rebound total area strictly decreases, so the loop's contract is
    /// unchanged.
    fn pick_area_victim(
        &self,
        assignment: &Assignment,
        binding: &Binding,
        tried: &HashSet<(NodeId, VersionId)>,
    ) -> Option<(Vec<NodeId>, VersionId, (NodeId, VersionId))> {
        let mut nodes: Vec<NodeId> = self.dfg.node_ids().collect();
        nodes.sort_by_key(|&n| {
            let area = self.library.version(assignment.version(n)).area();
            (std::cmp::Reverse(area), n.index())
        });
        for n in nodes {
            for v in self.library.alternatives(assignment.version(n)) {
                if tried.contains(&(n, v)) {
                    continue;
                }
                let sharers = binding.sharers(n).to_vec();
                return Some((sharers, v, (n, v)));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn figure4a() -> Dfg {
        DfgBuilder::new("figure4a")
            .ops(&["A", "B", "C", "D", "E", "F"], OpKind::Add)
            .dep("A", "C")
            .dep("B", "C")
            .dep("C", "D")
            .dep("C", "E")
            .dep("D", "F")
            .dep("E", "F")
            .build()
            .unwrap()
    }

    #[test]
    fn generous_bounds_keep_most_reliable_versions() {
        let g = figure4a();
        let lib = Library::table1();
        // adder1 everywhere: critical path 4 nodes x 2cc = 8; area 1 unit
        // when everything serializes.
        let d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(20, 10))
            .unwrap();
        assert!((d.reliability.value() - 0.999f64.powi(6)).abs() < 1e-9);
        assert!(d.latency <= 20);
        assert!(d.area <= 10);
    }

    #[test]
    fn figure5_case_matches_all_type2_optimum() {
        // Paper Fig. 5: Ld=5, Ad=4. At these bounds the graph's D/E (or
        // A/B) pair must run concurrently on two 1-cycle adders, so the
        // true optimum is the all-type-2 design at 0.82783 (the paper's
        // claimed 0.90713 schedule violates its own dependences — see
        // EXPERIMENTS.md). The engine must find that optimum.
        let g = figure4a();
        let lib = Library::table1();
        let d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(5, 4))
            .unwrap();
        assert!(d.latency <= 5, "latency {}", d.latency);
        assert!(d.area <= 4, "area {}", d.area);
        let all_type2 = 0.969f64.powi(6);
        assert!(
            d.reliability.value() + 1e-9 >= all_type2,
            "got {} vs single-version {all_type2}",
            d.reliability.value()
        );
    }

    #[test]
    fn relaxed_latency_lets_mixing_beat_single_version() {
        // At Ld=6, Ad=4 the ops can stagger enough that a ripple-carry /
        // Brent-Kung mix strictly beats any single-version design.
        let g = figure4a();
        let lib = Library::table1();
        let d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(6, 4))
            .unwrap();
        let all_type2 = 0.969f64.powi(6);
        assert!(
            d.reliability.value() > all_type2,
            "got {} vs single-version {all_type2}",
            d.reliability.value()
        );
    }

    #[test]
    fn latency_bound_forces_faster_versions() {
        // Chain of 3 adds: all-adder1 needs 6 cycles. Ld=4 forces at least
        // one faster (less reliable) version onto the chain.
        let g = DfgBuilder::new("chain3")
            .ops(&["a", "b", "c"], OpKind::Add)
            .dep("a", "b")
            .dep("b", "c")
            .build()
            .unwrap();
        let lib = Library::table1();
        let d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(4, 8))
            .unwrap();
        assert!(d.latency <= 4);
        assert!(d.reliability.value() < 0.999f64.powi(3));
    }

    #[test]
    fn impossible_latency_reports_no_solution() {
        let g = figure4a(); // depth 4, so even all-1cc versions need 4 cycles
        let lib = Library::table1();
        let err = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(3, 99))
            .unwrap_err();
        assert!(matches!(err, SynthesisError::NoSolution { .. }), "{err}");
    }

    #[test]
    fn impossible_area_reports_no_solution() {
        // Two independent multiplies in 1 cycle each (mult2, area 4) can't
        // fit area 3; even mult1 (area 2, 2cc) needs area 2 but latency is
        // fine... so force both tight: area 1 is below any multiplier.
        let g = DfgBuilder::new("mul").op("m", OpKind::Mul).build().unwrap();
        let lib = Library::table1();
        let err = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(10, 1))
            .unwrap_err();
        assert!(matches!(err, SynthesisError::NoSolution { .. }), "{err}");
    }

    #[test]
    fn design_respects_bounds_across_grid() {
        let g = figure4a();
        let lib = Library::table1();
        for latency in 4..=9 {
            for area in 1..=8 {
                if let Ok(d) = Synthesizer::new(&g, &lib).synthesize(Bounds::new(latency, area)) {
                    assert!(d.latency <= latency, "L {} > {latency}", d.latency);
                    assert!(d.area <= area, "A {} > {area}", d.area);
                    d.binding
                        .assert_valid(&g, &d.schedule, &d.assignment.delays(&g, &lib));
                }
            }
        }
    }

    #[test]
    fn loosening_latency_never_lowers_reliability() {
        let g = figure4a();
        let lib = Library::table1();
        let mut prev = 0.0f64;
        for latency in 4..=10 {
            if let Ok(d) = Synthesizer::new(&g, &lib).synthesize(Bounds::new(latency, 4)) {
                assert!(
                    d.reliability.value() + 1e-9 >= prev,
                    "reliability dropped from {prev} to {} at Ld={latency}",
                    d.reliability.value()
                );
                prev = d.reliability.value();
            }
        }
        assert!(prev > 0.0, "at least one point must be feasible");
    }

    #[test]
    fn every_flow_combination_produces_valid_designs() {
        let g = figure4a();
        let lib = Library::table1();
        for scheduler in ["density", "force-directed"] {
            for binder in ["left-edge", "coloring"] {
                for victim in ["max-delay", "min-reliability-loss"] {
                    let flow = FlowSpec::default()
                        .with_scheduler(scheduler)
                        .with_binder(binder)
                        .with_victim(victim);
                    let d = Synthesizer::with_flow(&g, &lib, &flow)
                        .unwrap()
                        .synthesize(Bounds::new(6, 4))
                        .unwrap();
                    assert!(d.latency <= 6);
                    assert!(d.area <= 4);
                }
            }
        }
    }

    #[test]
    fn unknown_pass_id_is_rejected_at_construction() {
        let g = figure4a();
        let lib = Library::table1();
        let err = Synthesizer::with_flow(&g, &lib, &FlowSpec::default().with_binder("magic"))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SynthesisError::UnknownPass { .. }), "{err}");
    }

    #[test]
    fn report_diagnostics_trace_the_search() {
        // Tight latency forces victim moves; the default refine pass
        // records its portfolio and upgrade activity.
        let g = figure4a();
        let lib = Library::table1();
        let report = Synthesizer::new(&g, &lib)
            .synthesize_report(Bounds::new(5, 4))
            .unwrap();
        assert!(report.diagnostics.victim_moves > 0);
        assert!(report.diagnostics.loop_iterations > 0);
        assert!(!report.diagnostics.candidate_pool_sizes.is_empty());
        // The strict paper flow never refines.
        let paper = Synthesizer::with_flow(&g, &lib, &FlowSpec::paper())
            .unwrap()
            .synthesize_report(Bounds::new(5, 4))
            .unwrap();
        assert_eq!(paper.diagnostics.refine_upgrades, 0);
    }
}
