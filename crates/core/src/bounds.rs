//! Synthesis constraints.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The latency and area bounds a design must meet (`Ld` and `Ad` in the
/// paper).
///
/// # Examples
///
/// ```
/// use rchls_core::Bounds;
///
/// let b = Bounds::new(11, 8); // the paper's Figure 7 bounds for FIR
/// assert_eq!(b.latency, 11);
/// assert_eq!(b.area, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bounds {
    /// Maximum latency in clock cycles (`Ld`).
    pub latency: u32,
    /// Maximum total area in normalized units (`Ad`).
    pub area: u32,
}

impl Bounds {
    /// Creates a bound pair.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero (no nonempty design can meet it).
    #[must_use]
    pub fn new(latency: u32, area: u32) -> Bounds {
        assert!(latency > 0, "latency bound must be positive");
        assert!(area > 0, "area bound must be positive");
        Bounds { latency, area }
    }
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ld={}, Ad={}", self.latency, self.area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Bounds::new(10, 9).to_string(), "Ld=10, Ad=9");
    }

    #[test]
    #[should_panic(expected = "latency bound")]
    fn zero_latency_rejected() {
        let _ = Bounds::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "area bound")]
    fn zero_area_rejected() {
        let _ = Bounds::new(1, 0);
    }
}
