//! Cached handles to the global telemetry metrics this crate records.
//!
//! Every instrumentation site in `rchls-core` goes through one of these
//! accessors, so the registry lock is taken once per metric per process
//! and the hot paths only touch the returned atomics. The names below
//! are the crate's stable metrics vocabulary — the README's
//! "Observability" section documents them.

use rchls_telemetry::metrics::{
    self, Counter, Histogram, BYTE_BUCKETS, COUNT_BUCKETS, TIME_BUCKETS_MICROS,
};
use std::sync::{Arc, OnceLock};

macro_rules! counter_handle {
    ($(#[$doc:meta])* $fn_name:ident, $name:expr) => {
        $(#[$doc])*
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
            HANDLE.get_or_init(|| metrics::counter($name))
        }
    };
}

macro_rules! histogram_handle {
    ($(#[$doc:meta])* $fn_name:ident, $name:expr, $buckets:expr) => {
        $(#[$doc])*
        pub(crate) fn $fn_name() -> &'static Histogram {
            static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
            HANDLE.get_or_init(|| metrics::histogram($name, $buckets))
        }
    };
}

counter_handle!(
    /// `synth_cache.hits` — memoized synthesis points answered from cache.
    synth_cache_hits, "synth_cache.hits");
counter_handle!(
    /// `synth_cache.misses` — synthesis points computed fresh.
    synth_cache_misses, "synth_cache.misses");
counter_handle!(
    /// `synth_cache.inserts` — entries added (with no budget this is the
    /// resident size; under one, inserts minus evictions is).
    synth_cache_inserts, "synth_cache.inserts");
counter_handle!(
    /// `synth_cache.evictions` — memoized reports dropped to stay under
    /// the session cache budget.
    synth_cache_evictions, "synth_cache.evictions");
counter_handle!(
    /// `starts_cache.evictions` — interned start pools dropped to stay
    /// under the session cache budget.
    starts_cache_evictions, "starts_cache.evictions");
counter_handle!(
    /// `alloc_cache.evictions` — interned allocation-first designs
    /// dropped to stay under the session cache budget.
    alloc_cache_evictions, "alloc_cache.evictions");
counter_handle!(
    /// `scratch_pool.drops` — arenas released but not retained because
    /// pooling them would exceed the scratch byte budget.
    scratch_pool_drops, "scratch_pool.drops");
counter_handle!(
    /// `starts_cache.hits` — uniform start pools answered from cache.
    starts_cache_hits, "starts_cache.hits");
counter_handle!(
    /// `starts_cache.misses` — uniform start pools computed fresh.
    starts_cache_misses, "starts_cache.misses");
counter_handle!(
    /// `alloc_cache.hits` — allocation-first designs answered from cache.
    alloc_cache_hits, "alloc_cache.hits");
counter_handle!(
    /// `alloc_cache.misses` — allocation-first designs computed fresh.
    alloc_cache_misses, "alloc_cache.misses");
counter_handle!(
    /// `scratch_pool.lends` — arenas handed out by [`crate::ScratchPool`].
    scratch_pool_lends, "scratch_pool.lends");
counter_handle!(
    /// `scratch_pool.creates` — lends that had to allocate a new arena.
    scratch_pool_creates, "scratch_pool.creates");
counter_handle!(
    /// `core.lock_poisoned` — poisoned cache/registry locks recovered
    /// instead of aborting (see [`crate::sync`]).
    lock_poisoned, "core.lock_poisoned");
counter_handle!(
    /// `executor.jobs` — jobs completed by the sweep executor.
    executor_jobs, "executor.jobs");
counter_handle!(
    /// `executor.batches` — executor batch invocations.
    executor_batches, "executor.batches");

histogram_handle!(
    /// `phase.sched_micros` — scheduler-pass latency per invocation.
    sched_phase_micros, "phase.sched_micros", TIME_BUCKETS_MICROS);
histogram_handle!(
    /// `phase.bind_micros` — binder-pass latency per invocation.
    bind_phase_micros, "phase.bind_micros", TIME_BUCKETS_MICROS);
histogram_handle!(
    /// `phase.refine_micros` — refine-pass latency per strategy run.
    refine_phase_micros, "phase.refine_micros", TIME_BUCKETS_MICROS);
histogram_handle!(
    /// `phase.synth_micros` — whole-report latency per strategy run.
    synth_phase_micros, "phase.synth_micros", TIME_BUCKETS_MICROS);
histogram_handle!(
    /// `phase.alloc_micros` — allocation-first search latency per run.
    alloc_phase_micros, "phase.alloc_micros", TIME_BUCKETS_MICROS);
histogram_handle!(
    /// `synth_cache.resident_bytes` — approximate resident bytes of the
    /// memo table, recorded after every insert/eviction round.
    synth_cache_resident_bytes, "synth_cache.resident_bytes", BYTE_BUCKETS);
histogram_handle!(
    /// `starts_cache.resident_bytes` — approximate resident bytes of the
    /// start-pool table, recorded after every insert/eviction round.
    starts_cache_resident_bytes, "starts_cache.resident_bytes", BYTE_BUCKETS);
histogram_handle!(
    /// `alloc_cache.resident_bytes` — approximate resident bytes of the
    /// alloc-design table, recorded after every insert/eviction round.
    alloc_cache_resident_bytes, "alloc_cache.resident_bytes", BYTE_BUCKETS);
histogram_handle!(
    /// `executor.batch_jobs` — jobs per executor batch.
    executor_batch_jobs, "executor.batch_jobs", COUNT_BUCKETS);
histogram_handle!(
    /// `executor.queue_depth` — jobs still queued when a worker pulls one.
    executor_queue_depth, "executor.queue_depth", COUNT_BUCKETS);
histogram_handle!(
    /// `executor.worker_busy_micros` — per-worker busy time per batch.
    executor_worker_busy_micros, "executor.worker_busy_micros", TIME_BUCKETS_MICROS);

counter_handle!(
    /// `store.hits` — synthesis points answered from the on-disk store
    /// (the second cache tier) after a memory miss.
    store_hits, "store.hits");
counter_handle!(
    /// `store.misses` — on-disk store probes that found no usable
    /// entry (absent, quarantined, or a fingerprint collision).
    store_misses, "store.misses");
counter_handle!(
    /// `store.writes` — fresh results written back to the store.
    store_writes, "store.writes");
counter_handle!(
    /// `store.write_failures` — write-backs that failed (disk full,
    /// permissions); synthesis results are still returned.
    store_write_failures, "store.write_failures");
counter_handle!(
    /// `store.quarantined` — store entries demoted because their
    /// payload no longer decodes (engine schema drift), on top of the
    /// store's own envelope-level quarantines.
    store_quarantined, "store.quarantined");
histogram_handle!(
    /// `store.hit_micros` — on-disk store probe latency on hits.
    store_hit_micros, "store.hit_micros", TIME_BUCKETS_MICROS);
histogram_handle!(
    /// `store.miss_micros` — on-disk store probe latency on misses.
    store_miss_micros, "store.miss_micros", TIME_BUCKETS_MICROS);
