//! Pipelined reliability-centric synthesis.
//!
//! The paper states its algorithm "can be used for both pipelined and
//! non-pipelined data-paths" but evaluates only the latter. This module
//! completes the pipelined half: the same reliability-centric version
//! selection, but scheduling balances the *modulo* occupancy profile
//! ([`rchls_sched::schedule_modulo`]) and binding shares units only
//! between operations that never collide modulo the initiation interval
//! ([`rchls_bind::bind_left_edge_pipelined`]).

use crate::bounds::Bounds;
use crate::design::Design;
use crate::error::SynthesisError;
use crate::flow::{Diagnostics, SynthReport};
use crate::synth::Synthesizer;
use rchls_bind::bind_left_edge_pipelined;
use rchls_sched::{asap, schedule_modulo};

impl Synthesizer<'_> {
    /// Synthesizes a pipelined data path with initiation interval `ii`:
    /// the most reliable design whose schedule length fits
    /// `bounds.latency` and whose **pipelined** binding (units shared only
    /// across non-colliding residues mod `ii`) fits `bounds.area`.
    ///
    /// A smaller `ii` means higher throughput but more unit pressure; at
    /// `ii >= bounds.latency` this degenerates to the non-pipelined
    /// problem.
    ///
    /// # Errors
    ///
    /// Same contract as [`Synthesizer::synthesize`].
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rchls_core::{Bounds, Synthesizer};
    /// use rchls_reslib::Library;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dfg = rchls_workloads::diffeq();
    /// let library = Library::table1();
    /// let synth = Synthesizer::new(&dfg, &library);
    /// let plain = synth.synthesize(Bounds::new(8, 12))?;
    /// let piped = synth.synthesize_pipelined(Bounds::new(8, 12), 4)?;
    /// // Pipelining can only increase unit pressure, never reduce it.
    /// assert!(piped.area >= plain.area || piped.reliability.value() <= plain.reliability.value());
    /// # Ok(())
    /// # }
    /// ```
    pub fn synthesize_pipelined(&self, bounds: Bounds, ii: u32) -> Result<Design, SynthesisError> {
        self.synthesize_pipelined_report(bounds, ii)
            .map(|r| r.design)
    }

    /// [`synthesize_pipelined`](Synthesizer::synthesize_pipelined) with a
    /// full diagnostics-carrying [`SynthReport`] — the engine behind the
    /// `"pipelined"` [`Strategy`](crate::Strategy).
    ///
    /// # Errors
    ///
    /// Same contract as [`Synthesizer::synthesize`].
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn synthesize_pipelined_report(
        &self,
        bounds: Bounds,
        ii: u32,
    ) -> Result<SynthReport, SynthesisError> {
        assert!(ii > 0, "initiation interval must be positive");
        let span = rchls_telemetry::span!(timed: "strategy.pipelined");
        self.dfg()
            .validate()
            .map_err(rchls_sched::ScheduleError::from)?;

        // Portfolio over uniform starting points, each greedily upgraded
        // under modulo scheduling / collision-free binding.
        let mut diagnostics = Diagnostics::default();
        let starts = self.pipelined_starts(bounds, ii)?;
        diagnostics
            .candidate_pool_sizes
            .push(u32::try_from(starts.len()).unwrap_or(u32::MAX));
        let mut best: Option<Design> = None;
        for start in starts {
            let candidate = self.pipeline_refine(start, bounds, ii, &mut diagnostics)?;
            let better = match &best {
                None => true,
                Some(b) => candidate.reliability.value() > b.reliability.value(),
            };
            if better {
                best = Some(candidate);
            }
        }
        let design = best.ok_or_else(|| SynthesisError::NoSolution {
            reason: format!("no pipelined design meets {bounds} at II={ii}"),
        })?;
        self.harvest_timers(&mut diagnostics);
        diagnostics.wall_time_micros = span.elapsed_micros();
        Ok(SynthReport {
            design,
            diagnostics,
        })
    }

    /// Feasible uniform starting points for the pipelined search.
    fn pipelined_starts(&self, bounds: Bounds, ii: u32) -> Result<Vec<Design>, SynthesisError> {
        let mut out = Vec::new();
        for assignment in self.uniform_assignments()? {
            let delays = assignment.delays(self.dfg(), self.library());
            let min = asap(self.dfg(), &delays)?.latency();
            if min > bounds.latency {
                continue;
            }
            let Ok(schedule) = schedule_modulo(self.dfg(), &delays, bounds.latency, ii) else {
                continue;
            };
            let binding =
                bind_left_edge_pipelined(self.dfg(), &schedule, &assignment, self.library(), ii);
            if binding.total_area(self.library()) > bounds.area {
                continue;
            }
            let replication = vec![1u32; binding.instance_count()];
            out.push(Design::assemble(
                self.dfg(),
                self.library(),
                assignment,
                schedule,
                binding,
                replication,
            ));
        }
        Ok(out)
    }

    /// Greedy upgrade pass under pipelined scheduling/binding.
    fn pipeline_refine(
        &self,
        mut design: Design,
        bounds: Bounds,
        ii: u32,
        diagnostics: &mut Diagnostics,
    ) -> Result<Design, SynthesisError> {
        loop {
            diagnostics.loop_iterations += 1;
            let mut improved: Option<Design> = None;
            for n in self.dfg().node_ids() {
                let cur = design.assignment.version(n);
                let cur_r = self.library().version(cur).reliability().value();
                for (v, ver) in self.library().versions_of(self.dfg().node(n).class()) {
                    if ver.reliability().value() <= cur_r {
                        continue;
                    }
                    let mut assignment = design.assignment.clone();
                    assignment.set(n, v);
                    let delays = assignment.delays(self.dfg(), self.library());
                    if asap(self.dfg(), &delays)?.latency() > bounds.latency {
                        diagnostics.rejected_moves += 1;
                        continue;
                    }
                    let Ok(schedule) = schedule_modulo(self.dfg(), &delays, bounds.latency, ii)
                    else {
                        diagnostics.rejected_moves += 1;
                        continue;
                    };
                    let binding = bind_left_edge_pipelined(
                        self.dfg(),
                        &schedule,
                        &assignment,
                        self.library(),
                        ii,
                    );
                    if binding.total_area(self.library()) > bounds.area {
                        diagnostics.rejected_moves += 1;
                        continue;
                    }
                    let replication = vec![1u32; binding.instance_count()];
                    let cand = Design::assemble(
                        self.dfg(),
                        self.library(),
                        assignment,
                        schedule,
                        binding,
                        replication,
                    );
                    let gain = cand.reliability.value() - design.reliability.value();
                    if gain <= 1e-15 {
                        continue;
                    }
                    let better = improved
                        .as_ref()
                        .is_none_or(|i| cand.reliability.value() > i.reliability.value());
                    if better {
                        improved = Some(cand);
                    }
                }
            }
            match improved {
                Some(d) => {
                    diagnostics.refine_upgrades += 1;
                    design = d;
                }
                None => break,
            }
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::{DfgBuilder, OpClass, OpKind};
    use rchls_reslib::Library;

    #[test]
    fn pipelined_design_respects_modulo_area() {
        let g = DfgBuilder::new("indep")
            .ops(&["a", "b", "c", "d"], OpKind::Add)
            .build()
            .unwrap();
        let lib = Library::table1();
        let synth = Synthesizer::new(&g, &lib);
        // II = 1: every op needs its own unit residue; 4 ops -> heavy area.
        let d1 = synth.synthesize_pipelined(Bounds::new(8, 16), 1).unwrap();
        // II = 4: ops can stagger onto fewer units.
        let d4 = synth.synthesize_pipelined(Bounds::new(8, 16), 4).unwrap();
        assert!(
            d1.area >= d4.area,
            "II=1 area {} < II=4 area {}",
            d1.area,
            d4.area
        );
        let delays1 = d1.assignment.delays(&g, &lib);
        d1.schedule.validate(&g, &delays1).unwrap();
    }

    #[test]
    fn pipelined_tightens_to_no_solution() {
        let g = DfgBuilder::new("indep")
            .ops(&["a", "b", "c", "d"], OpKind::Add)
            .build()
            .unwrap();
        let lib = Library::table1();
        // At II=1 each 1cc add occupies the single residue: four units of
        // at least area 1 each... area bound 2 cannot fit 4 adder units.
        let err = Synthesizer::new(&g, &lib)
            .synthesize_pipelined(Bounds::new(8, 2), 1)
            .unwrap_err();
        assert!(matches!(err, SynthesisError::NoSolution { .. }));
    }

    #[test]
    fn pipelined_prefers_reliable_versions_when_area_allows() {
        let g = DfgBuilder::new("pair")
            .ops(&["a", "b"], OpKind::Add)
            .dep("a", "b")
            .build()
            .unwrap();
        let lib = Library::table1();
        let d = Synthesizer::new(&g, &lib)
            .synthesize_pipelined(Bounds::new(6, 8), 3)
            .unwrap();
        // Plenty of slack: both adds should reach the most reliable adder.
        assert!((d.reliability.value() - 0.999f64.powi(2)).abs() < 1e-9);
    }

    #[test]
    fn large_ii_matches_unpipelined_unit_counts() {
        let g = rchls_workloads::diffeq();
        let lib = Library::table1();
        let synth = Synthesizer::new(&g, &lib);
        let bounds = Bounds::new(8, 14);
        let piped = synth.synthesize_pipelined(bounds, bounds.latency).unwrap();
        let plain = synth.synthesize(bounds).unwrap();
        // With II = latency no folding occurs, so the pipelined result is
        // never worse in area than a non-pipelined design of equal
        // reliability would suggest (both meet the same bounds).
        assert!(piped.area <= bounds.area && plain.area <= bounds.area);
        for class in OpClass::ALL {
            let delays = piped.assignment.delays(&g, &lib);
            let peak = piped
                .schedule
                .modulo_peak_usage(&g, &delays, class, bounds.latency);
            let plain_peak = piped.schedule.peak_usage(&g, &delays, class);
            assert_eq!(peak, plain_peak, "II=L folding must be a no-op");
        }
    }
}
