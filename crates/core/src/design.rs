//! The synthesized design: the complete output of any strategy.

use rchls_bind::{Assignment, Binding};
use rchls_dfg::Dfg;
use rchls_relmath::{replicated, serial_reliability, Reliability};
use rchls_reslib::Library;
use rchls_sched::Schedule;
use serde::{Deserialize, Serialize};

/// A complete synthesized design: version assignment, schedule, binding,
/// optional per-instance redundancy, and the resulting metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    /// Which library version each operation runs on.
    pub assignment: Assignment,
    /// Start step of every operation.
    pub schedule: Schedule,
    /// Operations packed onto functional-unit instances.
    pub binding: Binding,
    /// Replication count per instance (1 = no redundancy; 2 = duplex with
    /// recovery; odd N ≥ 3 = N-modular redundancy). Redundant copies run in
    /// lock-step, so replication costs area but no latency.
    pub replication: Vec<u32>,
    /// Achieved latency in clock cycles.
    pub latency: u32,
    /// Total area including redundant copies.
    pub area: u32,
    /// Overall design reliability (the paper's Section 5 product model,
    /// with NMR applied per replicated instance).
    pub reliability: Reliability,
}

impl Design {
    /// Approximate heap footprint in bytes (capacity-based, excluding
    /// `size_of::<Design>()`) — the size-accounting input for budgeted
    /// caches.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        self.assignment.approx_heap_bytes()
            + self.schedule.approx_heap_bytes()
            + self.binding.approx_heap_bytes()
            + self.replication.capacity() * size_of::<u32>()
    }

    /// Assembles a design and computes its metrics.
    ///
    /// # Panics
    ///
    /// Panics if `replication` length differs from the binding's instance
    /// count or contains zeros.
    #[must_use]
    pub fn assemble(
        dfg: &Dfg,
        library: &Library,
        assignment: Assignment,
        schedule: Schedule,
        binding: Binding,
        replication: Vec<u32>,
    ) -> Design {
        assert_eq!(
            replication.len(),
            binding.instance_count(),
            "one replication count per instance"
        );
        assert!(
            replication.iter().all(|&r| r >= 1),
            "replication counts are at least 1"
        );
        let latency = schedule.latency();
        let area = Design::area_with_replication(library, &binding, &replication);
        let reliability =
            Design::reliability_with_replication(dfg, library, &assignment, &binding, &replication);
        Design {
            assignment,
            schedule,
            binding,
            replication,
            latency,
            area,
            reliability,
        }
    }

    /// Total area of a binding under per-instance replication counts.
    #[must_use]
    pub fn area_with_replication(library: &Library, binding: &Binding, replication: &[u32]) -> u32 {
        binding
            .instances()
            .iter()
            .zip(replication)
            .map(|(inst, &r)| library.version(inst.version).area() * r)
            .sum()
    }

    /// Design reliability under per-instance replication: every node
    /// contributes its version reliability boosted by its instance's
    /// redundancy, and the design is the serial product (Section 5).
    #[must_use]
    pub fn reliability_with_replication(
        dfg: &Dfg,
        library: &Library,
        assignment: &Assignment,
        binding: &Binding,
        replication: &[u32],
    ) -> Reliability {
        serial_reliability(dfg.node_ids().map(|n| {
            let base = library.version(assignment.version(n)).reliability();
            let r = replication[binding.instance_of(n).index()];
            replicated(base, r)
        }))
    }

    /// Number of redundant instances (replication > 1).
    #[must_use]
    pub fn redundant_instance_count(&self) -> usize {
        self.replication.iter().filter(|&&r| r > 1).count()
    }

    /// Renders a human-readable summary (schedule plus metrics).
    #[must_use]
    pub fn render(&self, dfg: &Dfg, library: &Library) -> String {
        let mut out = self.schedule.render(dfg);
        out.push_str(&format!(
            "latency = {} cc, area = {} units, reliability = {}\n",
            self.latency, self.area, self.reliability
        ));
        for (idx, inst) in self.binding.instances().iter().enumerate() {
            let v = library.version(inst.version);
            let labels: Vec<&str> = inst.nodes.iter().map(|&n| dfg.node(n).label()).collect();
            out.push_str(&format!(
                "  u{idx}: {} x{} <- [{}]\n",
                v.name(),
                self.replication[idx],
                labels.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_bind::bind_left_edge;
    use rchls_dfg::{DfgBuilder, OpKind};
    use rchls_sched::asap;

    fn setup() -> (Dfg, Library, Assignment, Schedule, Binding) {
        let g = DfgBuilder::new("g")
            .ops(&["a", "b"], OpKind::Add)
            .dep("a", "b")
            .build()
            .unwrap();
        let lib = Library::table1();
        let assign = Assignment::uniform(&g, &lib).unwrap();
        let delays = assign.delays(&g, &lib);
        let sched = asap(&g, &delays).unwrap();
        let binding = bind_left_edge(&g, &sched, &assign, &lib);
        (g, lib, assign, sched, binding)
    }

    #[test]
    fn assemble_computes_metrics() {
        let (g, lib, assign, sched, binding) = setup();
        let reps = vec![1; binding.instance_count()];
        let d = Design::assemble(&g, &lib, assign, sched, binding, reps);
        assert_eq!(d.latency, 4); // two sequential 2-cycle adder1 ops
        assert_eq!(d.area, 1); // shared single adder1
        assert!((d.reliability.value() - 0.999f64.powi(2)).abs() < 1e-12);
        assert_eq!(d.redundant_instance_count(), 0);
        let text = d.render(&g, &lib);
        assert!(text.contains("adder1"));
        assert!(text.contains("latency = 4"));
    }

    #[test]
    fn replication_raises_reliability_and_area() {
        let (g, lib, assign, sched, binding) = setup();
        let plain = Design::assemble(
            &g,
            &lib,
            assign.clone(),
            sched.clone(),
            binding.clone(),
            vec![1; binding.instance_count()],
        );
        let tmr = Design::assemble(&g, &lib, assign, sched, binding, vec![3]);
        assert_eq!(tmr.area, 3 * plain.area);
        assert!(tmr.reliability.value() > plain.reliability.value());
        assert_eq!(tmr.redundant_instance_count(), 1);
    }

    #[test]
    #[should_panic(expected = "one replication count per instance")]
    fn wrong_replication_length_panics() {
        let (g, lib, assign, sched, binding) = setup();
        let _ = Design::assemble(&g, &lib, assign, sched, binding, vec![]);
    }
}
