//! Greedy modular-redundancy insertion (the mechanism shared by the
//! Orailoglu–Karri baseline and the paper's combined approach).

use crate::design::Design;
use rchls_dfg::Dfg;
use rchls_reslib::Library;
use serde::{Deserialize, Serialize};

/// How replication counts are allowed to grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RedundancyModel {
    /// Copies are added one at a time: 1 → 2 (duplex with rollback
    /// recovery) → 3 (TMR) → … (default). Under the paper's optimistic
    /// duplex model `1 − (1−R)²`, duplication dominates majority voting,
    /// so the greedy in practice stops at 2 copies — which matches the
    /// small-area redundancy steps visible in the paper's Table 2.
    #[default]
    DuplexAndNmr,
    /// Classic Orailoglu–Karri NMR: only odd module counts (1 → 3 → 5 → …),
    /// pure majority voting with no recovery mechanism.
    NmrOnly,
}

/// Spends any area left under `area_bound` on replicating functional-unit
/// instances, greedily maximizing reliability gain per unit of area.
///
/// Each step considers growing one instance's replication count (per
/// `model`) and commits the move with the best `ΔR / Δarea` among those
/// that still fit. Voter/checker area is free, as in the paper's
/// accounting ("excluding the area required by the result-checking
/// circuitry"). Redundant copies run in lock-step with the original, so
/// latency is unchanged.
///
/// Returns the number of replication moves applied.
pub fn add_redundancy_with_model(
    design: &mut Design,
    dfg: &Dfg,
    library: &Library,
    area_bound: u32,
    model: RedundancyModel,
) -> u32 {
    let step = |cur: u32| match model {
        RedundancyModel::DuplexAndNmr => cur + 1,
        RedundancyModel::NmrOnly => cur + 2,
    };
    let mut applied = 0u32;
    loop {
        let current_area =
            Design::area_with_replication(library, &design.binding, &design.replication);
        let current_rel = Design::reliability_with_replication(
            dfg,
            library,
            &design.assignment,
            &design.binding,
            &design.replication,
        )
        .value();
        let mut best: Option<(f64, usize, u32)> = None;
        for idx in 0..design.replication.len() {
            let next = step(design.replication[idx]);
            let copies_added = next - design.replication[idx];
            let cost = library
                .version(design.binding.instances()[idx].version)
                .area()
                * copies_added;
            if current_area + cost > area_bound {
                continue;
            }
            let mut reps = design.replication.clone();
            reps[idx] = next;
            let rel = Design::reliability_with_replication(
                dfg,
                library,
                &design.assignment,
                &design.binding,
                &reps,
            )
            .value();
            let gain = rel - current_rel;
            if gain <= 1e-15 {
                continue;
            }
            let density = gain / f64::from(cost);
            let better = best.is_none_or(|(bd, bi, _)| {
                density > bd + 1e-18 || ((density - bd).abs() <= 1e-18 && idx < bi)
            });
            if better {
                best = Some((density, idx, next));
            }
        }
        match best {
            Some((_, idx, next)) => {
                design.replication[idx] = next;
                applied += 1;
            }
            None => break,
        }
    }
    // Re-derive the cached metrics.
    design.area = Design::area_with_replication(library, &design.binding, &design.replication);
    design.reliability = Design::reliability_with_replication(
        dfg,
        library,
        &design.assignment,
        &design.binding,
        &design.replication,
    );
    applied
}

/// [`add_redundancy_with_model`] with the default
/// [`RedundancyModel::DuplexAndNmr`].
///
/// # Examples
///
/// ```
/// use rchls_core::{add_redundancy, Bounds, Synthesizer};
/// use rchls_dfg::{DfgBuilder, OpKind};
/// use rchls_reslib::Library;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = DfgBuilder::new("one").op("a", OpKind::Add).build()?;
/// let library = Library::table1();
/// let mut design = Synthesizer::new(&dfg, &library).synthesize(Bounds::new(4, 9))?;
/// let before = design.reliability;
/// let applied = add_redundancy(&mut design, &dfg, &library, 9);
/// assert!(applied >= 1);
/// assert!(design.reliability.value() > before.value());
/// assert!(design.area <= 9);
/// # Ok(())
/// # }
/// ```
pub fn add_redundancy(design: &mut Design, dfg: &Dfg, library: &Library, area_bound: u32) -> u32 {
    add_redundancy_with_model(design, dfg, library, area_bound, RedundancyModel::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Bounds;
    use crate::synth::Synthesizer;
    use rchls_dfg::{DfgBuilder, OpKind};

    fn chain2() -> Dfg {
        DfgBuilder::new("chain2")
            .ops(&["a", "b"], OpKind::Add)
            .dep("a", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn no_budget_no_redundancy() {
        let g = chain2();
        let lib = Library::table1();
        let mut d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(6, 2))
            .unwrap();
        let area = d.area;
        let applied = add_redundancy(&mut d, &g, &lib, area);
        assert_eq!(applied, 0);
        assert_eq!(d.area, area);
    }

    #[test]
    fn redundancy_never_exceeds_bound_and_never_hurts() {
        let g = chain2();
        let lib = Library::table1();
        for budget in 2..=10 {
            let mut d = Synthesizer::new(&g, &lib)
                .synthesize(Bounds::new(6, 2))
                .unwrap();
            let before = d.reliability.value();
            add_redundancy(&mut d, &g, &lib, budget);
            assert!(d.area <= budget, "budget {budget}: area {}", d.area);
            assert!(
                d.reliability.value() + 1e-12 >= before,
                "budget {budget} hurt reliability"
            );
        }
    }

    #[test]
    fn duplex_model_stops_at_two_copies() {
        let g = DfgBuilder::new("one").op("a", OpKind::Add).build().unwrap();
        let lib = Library::table1();
        let mut d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(4, 1))
            .unwrap();
        assert_eq!(d.area, 1); // single adder1
        add_redundancy(&mut d, &g, &lib, 10);
        // Duplex with perfect recovery dominates TMR, so the greedy stops
        // at 2 copies no matter the budget.
        assert_eq!(d.replication, vec![2]);
        let r = 0.999f64;
        let expect = 1.0 - (1.0 - r) * (1.0 - r);
        assert!((d.reliability.value() - expect).abs() < 1e-12);
    }

    #[test]
    fn nmr_only_model_triplicates() {
        let g = DfgBuilder::new("one").op("a", OpKind::Add).build().unwrap();
        let lib = Library::table1();
        let mut d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(4, 1))
            .unwrap();
        add_redundancy_with_model(&mut d, &g, &lib, 3, RedundancyModel::NmrOnly);
        assert_eq!(d.replication, vec![3]);
        let r = 0.999f64;
        let expect = 3.0 * r * r - 2.0 * r * r * r;
        assert!((d.reliability.value() - expect).abs() < 1e-12);
    }

    #[test]
    fn nmr_only_grows_to_five_with_budget() {
        let g = DfgBuilder::new("one").op("a", OpKind::Add).build().unwrap();
        let lib = Library::table1();
        let mut d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(4, 1))
            .unwrap();
        add_redundancy_with_model(&mut d, &g, &lib, 5, RedundancyModel::NmrOnly);
        assert_eq!(d.replication, vec![5]);
    }
}
