//! The redundancy-based prior art (Orailoglu–Karri [3]) the paper
//! compares against.

use crate::bounds::Bounds;
use crate::design::Design;
use crate::error::SynthesisError;
use crate::flow::{Diagnostics, FlowSpec, SynthReport};
use crate::redundancy::{add_redundancy_with_model, RedundancyModel};
use crate::synth::Synthesizer;
use rchls_bind::Assignment;
use rchls_dfg::{Dfg, OpClass};
use rchls_reslib::{Library, VersionId};

/// The fixed version the baseline uses for each class: the fastest one,
/// ties broken toward the smaller area.
///
/// For the paper's Table 1 library this selects `adder2` and `mult2` —
/// exactly the single-version design the paper uses for \[3\] (its FIR
/// all-type-2 design scores `0.969²³ = 0.48467`, Table 2a).
#[must_use]
pub fn baseline_versions(library: &Library) -> Vec<(OpClass, Option<VersionId>)> {
    OpClass::ALL
        .iter()
        .map(|&class| {
            let v = library
                .versions_of(class)
                .min_by_key(|(id, v)| (v.delay(), v.area(), id.index()))
                .map(|(id, _)| id);
            (class, v)
        })
        .collect()
}

/// Synthesizes a design in the style of Orailoglu–Karri's
/// "maximize reliability given cost and performance constraints" strategy:
///
/// 1. every operation uses the *single fixed* version of its class
///    ([`baseline_versions`]) — prior-art libraries have one implementation
///    per operation type;
/// 2. the graph is scheduled time-constrained at `Ld` and bound with
///    maximal sharing, giving the base allocation and its area;
/// 3. any area left under `Ad` is spent on modular redundancy
///    ([`add_redundancy_with_model`]).
///
/// # Errors
///
/// * [`SynthesisError::Library`] if a class used by the graph has no
///   versions;
/// * [`SynthesisError::NoSolution`] if the single-version design cannot
///   meet the latency bound or its minimal-area binding exceeds `Ad`.
///
/// # Examples
///
/// ```
/// use rchls_core::{synthesize_nmr_baseline, Bounds, RedundancyModel};
/// use rchls_dfg::{DfgBuilder, OpKind};
/// use rchls_reslib::Library;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = DfgBuilder::new("pair").ops(&["a", "b"], OpKind::Add).dep("a", "b").build()?;
/// let library = Library::table1();
/// let d = synthesize_nmr_baseline(&dfg, &library, Bounds::new(4, 8), RedundancyModel::default())?;
/// assert!(d.area <= 8);
/// // Both ops on the fixed type-2 adder, one shared unit, duplicated.
/// assert!(d.reliability.value() > 0.969f64.powi(2));
/// # Ok(())
/// # }
/// ```
pub fn synthesize_nmr_baseline(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    model: RedundancyModel,
) -> Result<Design, SynthesisError> {
    nmr_baseline_report(dfg, library, bounds, &FlowSpec::default(), model).map(|r| r.design)
}

/// [`synthesize_nmr_baseline`] with an explicit flow (whose scheduler and
/// binder place the single-version design) and a full diagnostics-carrying
/// [`SynthReport`] — the engine behind the `"baseline"`
/// [`Strategy`](crate::Strategy).
///
/// # Errors
///
/// Same contract as [`synthesize_nmr_baseline`], plus
/// [`SynthesisError::UnknownPass`] when `flow` names unregistered passes.
pub fn nmr_baseline_report(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    flow: &FlowSpec,
    model: RedundancyModel,
) -> Result<SynthReport, SynthesisError> {
    nmr_baseline_report_pooled(dfg, library, bounds, flow, model, None)
}

/// [`nmr_baseline_report`] borrowing synthesis arenas from a session
/// [`ScratchPool`].
///
/// # Errors
///
/// Same contract as [`nmr_baseline_report`].
pub(crate) fn nmr_baseline_report_pooled(
    dfg: &Dfg,
    library: &Library,
    bounds: Bounds,
    flow: &FlowSpec,
    model: RedundancyModel,
    pool: Option<&crate::scratch::ScratchPool>,
) -> Result<SynthReport, SynthesisError> {
    let span = rchls_telemetry::span!(timed: "strategy.baseline");
    dfg.validate().map_err(rchls_sched::ScheduleError::from)?;
    // Fixed single version per class.
    let mut chosen = Vec::new();
    for (class, v) in baseline_versions(library) {
        if dfg.count_class(class) > 0 {
            match v {
                Some(v) => chosen.push((class, v)),
                None => return Err(SynthesisError::Library(rchls_reslib::LibraryError::Empty)),
            }
        }
    }
    let assignment = Assignment::from_fn(dfg, library, |n| {
        let class = dfg.node(n).class();
        chosen
            .iter()
            .find(|(c, _)| *c == class)
            .map(|&(_, v)| v)
            .expect("class coverage checked above")
    });

    // Schedule at the full latency budget for maximal sharing (minimum
    // base area leaves the most room for redundancy).
    let synth = Synthesizer::with_flow_pooled(dfg, library, flow, pool)?;
    let minimum = synth.min_latency(&assignment)?;
    if minimum > bounds.latency {
        return Err(SynthesisError::NoSolution {
            reason: format!(
                "single-version critical path {minimum} exceeds latency bound {}",
                bounds.latency
            ),
        });
    }
    let (schedule, binding) = synth.schedule_and_bind(&assignment, bounds.latency.max(minimum))?;
    let area = binding.total_area(library);
    if area > bounds.area {
        return Err(SynthesisError::NoSolution {
            reason: format!(
                "single-version design needs area {area} > bound {}",
                bounds.area
            ),
        });
    }

    let replication = vec![1u32; binding.instance_count()];
    let mut design = Design::assemble(dfg, library, assignment, schedule, binding, replication);
    let moves = add_redundancy_with_model(&mut design, dfg, library, bounds.area, model);
    let mut diagnostics = Diagnostics {
        redundancy_moves: moves,
        ..Diagnostics::default()
    };
    synth.harvest_timers(&mut diagnostics);
    diagnostics.wall_time_micros = span.elapsed_micros();
    Ok(SynthReport {
        design,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::DfgBuilder;
    use rchls_dfg::OpKind;

    #[test]
    fn baseline_versions_pick_type2_units() {
        let lib = Library::table1();
        let picks = baseline_versions(&lib);
        let name = |c: OpClass| {
            picks
                .iter()
                .find(|(pc, _)| *pc == c)
                .and_then(|&(_, v)| v)
                .map(|v| lib.version(v).name().to_owned())
                .unwrap()
        };
        assert_eq!(name(OpClass::Adder), "adder2");
        assert_eq!(name(OpClass::Multiplier), "mult2");
    }

    #[test]
    fn baseline_without_budget_matches_fixed_version_product() {
        let g = DfgBuilder::new("six")
            .ops(&["a", "b", "c", "d", "e", "f"], OpKind::Add)
            .dep("a", "b")
            .dep("b", "c")
            .dep("c", "d")
            .dep("d", "e")
            .dep("e", "f")
            .build()
            .unwrap();
        let lib = Library::table1();
        // Chain of 6 one-cycle type-2 adds: latency 6, one shared adder2
        // (area 2), no room for redundancy with Ad=2.
        let d = synthesize_nmr_baseline(&g, &lib, Bounds::new(6, 2), RedundancyModel::default())
            .unwrap();
        assert_eq!(d.area, 2);
        assert!((d.reliability.value() - 0.969f64.powi(6)).abs() < 1e-12);
        assert_eq!(d.redundant_instance_count(), 0);
    }

    #[test]
    fn baseline_spends_leftover_area_on_redundancy() {
        let g = DfgBuilder::new("six")
            .ops(&["a", "b", "c", "d", "e", "f"], OpKind::Add)
            .dep("a", "b")
            .dep("b", "c")
            .dep("c", "d")
            .dep("d", "e")
            .dep("e", "f")
            .build()
            .unwrap();
        let lib = Library::table1();
        let tight =
            synthesize_nmr_baseline(&g, &lib, Bounds::new(6, 2), RedundancyModel::default())
                .unwrap();
        let loose =
            synthesize_nmr_baseline(&g, &lib, Bounds::new(6, 4), RedundancyModel::default())
                .unwrap();
        assert!(loose.reliability.value() > tight.reliability.value());
        assert!(loose.redundant_instance_count() >= 1);
        assert!(loose.area <= 4);
    }

    #[test]
    fn baseline_latency_infeasible() {
        let g = DfgBuilder::new("chain")
            .ops(&["a", "b", "c"], OpKind::Add)
            .dep("a", "b")
            .dep("b", "c")
            .build()
            .unwrap();
        let lib = Library::table1();
        let err = synthesize_nmr_baseline(&g, &lib, Bounds::new(2, 99), RedundancyModel::default())
            .unwrap_err();
        assert!(matches!(err, SynthesisError::NoSolution { .. }));
    }

    #[test]
    fn baseline_area_infeasible() {
        let g = DfgBuilder::new("mul").op("m", OpKind::Mul).build().unwrap();
        let lib = Library::table1();
        // mult2 has area 4; bound of 3 is impossible for the baseline
        // (it cannot switch to the smaller mult1).
        let err = synthesize_nmr_baseline(&g, &lib, Bounds::new(9, 3), RedundancyModel::default())
            .unwrap_err();
        assert!(matches!(err, SynthesisError::NoSolution { .. }));
    }
}
