//! A multi-threaded work-queue executor with deterministic result order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fans independent jobs over a fixed-size scoped thread pool.
///
/// Results are returned **in input order** regardless of which worker
/// finished which job when — parallel runs are byte-for-byte
/// reproducible as long as each job is a pure function of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    jobs: usize,
}

impl SweepExecutor {
    /// An executor with `jobs` workers; `0` means one worker per
    /// available CPU.
    #[must_use]
    pub fn new(jobs: usize) -> SweepExecutor {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            jobs
        };
        SweepExecutor { jobs }
    }

    /// A single-threaded executor (the serial reference).
    #[must_use]
    pub fn serial() -> SweepExecutor {
        SweepExecutor::new(1)
    }

    /// The worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `work` over every item, returning outputs in item order.
    ///
    /// With one worker (or at most one item) everything runs on the
    /// calling thread; otherwise items are pulled from a shared atomic
    /// cursor by `min(jobs, items.len())` scoped threads.
    pub fn run<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        crate::obs::executor_batches().incr();
        crate::obs::executor_jobs().add(items.len() as u64);
        crate::obs::executor_batch_jobs().record(items.len() as u64);
        if self.jobs <= 1 || items.len() <= 1 {
            let busy = rchls_telemetry::span!(timed: "executor.batch");
            let out = items.iter().map(work).collect();
            crate::obs::executor_worker_busy_micros().record(busy.elapsed_micros());
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<T>>> =
            Mutex::new(std::iter::repeat_with(|| None).take(items.len()).collect());
        let workers = self.jobs.min(items.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let busy = rchls_telemetry::span!(timed: "executor.worker");
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else { break };
                        // How deep the shared queue still is when this
                        // worker pulls: the jobs nobody has claimed yet.
                        crate::obs::executor_queue_depth()
                            .record((items.len() - index.min(items.len())) as u64);
                        let output = work(item);
                        results.lock().expect("result lock")[index] = Some(output);
                    }
                    crate::obs::executor_worker_busy_micros().record(busy.elapsed_micros());
                });
            }
        });
        results
            .into_inner()
            .expect("result lock")
            .into_iter()
            .map(|slot| slot.expect("every job slot filled"))
            .collect()
    }
}

impl Default for SweepExecutor {
    fn default() -> SweepExecutor {
        SweepExecutor::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_auto() {
        assert!(SweepExecutor::new(0).jobs() >= 1);
        assert_eq!(SweepExecutor::new(3).jobs(), 3);
        assert_eq!(SweepExecutor::serial().jobs(), 1);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1usize, 2, 4, 8] {
            let got = SweepExecutor::new(jobs).run(&items, |&x| x * x);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn uneven_job_durations_still_order() {
        let items: Vec<u64> = (0..64).collect();
        let got = SweepExecutor::new(8).run(&items, |&x| {
            // Early items sleep longest so late items finish first.
            std::thread::sleep(std::time::Duration::from_micros(500 * (64 - x)));
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let got = SweepExecutor::new(16).run(&[1u32, 2], |&x| x + 1);
        assert_eq!(got, vec![2, 3]);
    }
}
