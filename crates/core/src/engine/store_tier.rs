//! The on-disk second cache tier: the payload codec between
//! [`SynthCache`](crate::engine::SynthCache) entries and a
//! [`rchls_store::ResultStore`].
//!
//! The store itself moves opaque strings; this module owns their shape.
//! A stored payload is one compact-JSON [`StoredEntry`]: the request
//! facts (`bounds`, strategy token) that double as the fingerprint
//! collision check, the report itself (wall-time-scrubbed so a store
//! hit is byte-identical to a fresh synthesis in every deterministic
//! artifact), and optional re-synthesis [`Provenance`] for
//! `rchls store verify`.
//!
//! Trust boundary: the store validates the *envelope* (magic, schema
//! version, fingerprint, length); this module validates the *payload*.
//! A payload that no longer decodes — engine schema drift since the
//! entry was written — is demoted to the store's quarantine and the
//! lookup treated as a miss, never served.

use crate::engine::cache::CacheKey;
use crate::{Bounds, FlowSpec, RedundancyModel, SynthReport};
use rchls_store::{Lookup, ResultStore};
use serde::{Deserialize, Serialize};

/// One persisted synthesis outcome, as stored under a cache fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredEntry {
    /// The strategy fingerprint token of the request (see
    /// [`crate::Strategy::fingerprint_token`]).
    pub strategy: String,
    /// The request bounds.
    pub bounds: Bounds,
    /// The synthesis report; `None` records an infeasible point so warm
    /// runs skip re-proving infeasibility. Diagnostics are stored
    /// wall-time-scrubbed (see [`crate::Diagnostics::scrubbed`]).
    pub report: Option<SynthReport>,
    /// Everything needed to re-synthesize this entry from scratch, when
    /// the writer knew it — the hook for `rchls store verify`.
    pub provenance: Option<Provenance>,
}

/// Re-synthesis provenance: the workload spec plus the flow and model
/// of the run that produced an entry. Together with the entry's own
/// `bounds`/`strategy` this reproduces the cache key, so `store verify`
/// can both detect mis-keyed entries and replay the synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// The canonical workload spec (resolvable through
    /// `rchls-workloads`' source registry, e.g. `builtin:fir16`).
    pub workload: String,
    /// The flow the entry was synthesized with.
    pub flow: FlowSpec,
    /// The redundancy model of the run.
    pub model: RedundancyModel,
}

/// What probing the store for one request produced.
// One short-lived value per store probe, consumed immediately by the
// cache; boxing the report would put an allocation on the hit path to
// save stack bytes nothing is fighting for.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum StoreOutcome {
    /// A validated entry for exactly this request (`None` = the point
    /// is recorded infeasible).
    Hit(Option<SynthReport>),
    /// A validated entry exists under this fingerprint but belongs to a
    /// *different* request — a 64-bit collision. Compute fresh; leave
    /// the resident entry alone (first writer wins, matching the
    /// in-memory table's discipline).
    Collision,
    /// Nothing usable: absent, envelope-quarantined by the store, or
    /// payload-quarantined here.
    Miss,
}

/// Renders a stored entry as its on-disk payload (compact JSON).
#[must_use]
pub fn encode_entry(entry: &StoredEntry) -> String {
    serde_json::to_string(entry).expect("stored entries always serialize")
}

/// Parses an on-disk payload back into a [`StoredEntry`].
///
/// # Errors
///
/// Returns the decode error when the payload is not a stored entry —
/// the caller quarantines the underlying object.
pub fn decode_entry(payload: &str) -> Result<StoredEntry, serde::Error> {
    serde_json::from_str(payload)
}

/// Probes `store` for `key`, validating the payload against the request
/// facts. Counts `store.*` metrics and records probe latency.
pub(crate) fn load(
    store: &ResultStore,
    key: CacheKey,
    bounds: Bounds,
    strategy_token: &str,
) -> StoreOutcome {
    let span = rchls_telemetry::span!(timed: "store.load");
    let outcome = match store.load(key.raw()) {
        Lookup::Hit(payload) => match decode_entry(&payload) {
            Ok(entry) if entry.bounds == bounds && entry.strategy == strategy_token => {
                StoreOutcome::Hit(entry.report)
            }
            Ok(_) => StoreOutcome::Collision,
            Err(_) => {
                // Envelope was intact but the report no longer decodes:
                // engine schema drift. Demote it like any corruption.
                store.quarantine_object(key.raw());
                crate::obs::store_quarantined().incr();
                StoreOutcome::Miss
            }
        },
        Lookup::Quarantined => {
            crate::obs::store_quarantined().incr();
            StoreOutcome::Miss
        }
        Lookup::Miss => StoreOutcome::Miss,
    };
    let micros = span.elapsed_micros();
    match outcome {
        StoreOutcome::Hit(_) => {
            crate::obs::store_hits().incr();
            crate::obs::store_hit_micros().record(micros);
        }
        StoreOutcome::Collision | StoreOutcome::Miss => {
            crate::obs::store_misses().incr();
            crate::obs::store_miss_micros().record(micros);
        }
    }
    outcome
}

/// Writes one fresh result back to `store` under `key`, wall-time
/// scrubbed. Write failures are counted, never surfaced — a full disk
/// must not fail the synthesis that just succeeded.
pub(crate) fn save(
    store: &ResultStore,
    key: CacheKey,
    bounds: Bounds,
    strategy_token: &str,
    report: Option<&SynthReport>,
    provenance: Option<&Provenance>,
) {
    let entry = StoredEntry {
        strategy: strategy_token.to_owned(),
        bounds,
        report: report.map(|r| SynthReport {
            design: r.design.clone(),
            diagnostics: r.diagnostics.scrubbed(),
        }),
        provenance: provenance.cloned(),
    };
    // The engine-level spill point: drops the write before the store
    // even sees it, exercising the "synthesis must not notice a dead
    // store tier" contract one layer up from store.write.*.
    if rchls_chaos::faultpoint!("engine.spill").is_some() {
        crate::obs::store_write_failures().incr();
        return;
    }
    match store.save(key.raw(), &encode_entry(&entry)) {
        Ok(()) => crate::obs::store_writes().incr(),
        Err(_) => crate::obs::store_write_failures().incr(),
    }
}
