//! The session-oriented synthesis engine: interned inputs, a shared
//! fingerprint cache, and deterministic parallel batch execution.
//!
//! The per-call API ([`crate::Strategy::run`]) re-borrows its DFG and
//! library on every request; a service synthesizing many scenario-diverse
//! requests wants the opposite shape — set the session up once, then
//! stream jobs through it. An [`Engine`] owns that session state:
//!
//! * the resource library and every resolved workload are interned
//!   behind [`Arc`], so repeated jobs share one copy instead of cloning
//!   on the hot path;
//! * workloads are named by **spec strings** resolved through the
//!   [`rchls_workloads`] source registry (`builtin:fir16`,
//!   `random:64x8@7`, `file:path.dfg`, or any out-of-tree scheme), and
//!   the canonical spec — seed and all — is echoed in every outcome so
//!   a report alone reproduces its run;
//! * every job runs through the [`SynthCache`] keyed by content
//!   fingerprints, so structurally identical requests are answered once;
//! * [`Engine::synth_batch`] fans jobs over the deterministic
//!   [`SweepExecutor`]: results come back in job order and are
//!   byte-identical at any worker count.
//!
//! This module also hosts the executor, fingerprint, and cache
//! primitives (grown in `rchls-explorer`, moved here so both the engine
//! and the explorer build on one implementation; `rchls_explorer`
//! re-exports them unchanged).
//!
//! # Examples
//!
//! ```
//! use rchls_core::engine::{Engine, SynthJob};
//! use rchls_reslib::Library;
//!
//! let engine = Engine::new(Library::table1()).with_jobs(2);
//! let jobs = vec![
//!     SynthJob::new("builtin:figure4a", 6, 4),
//!     SynthJob::new("random:16x4@7", 8, 8).with_strategy("combined"),
//! ];
//! let batch = engine.run_batch(&jobs);
//! assert_eq!(batch.outcomes.len(), 2);
//! assert!(batch.outcomes.iter().all(|o| o.report.is_some()));
//! // The random workload's seed is echoed in the canonical spec.
//! assert_eq!(batch.outcomes[1].workload, "random:16x4@7");
//! ```

mod budget;
mod cache;
mod executor;
mod fingerprint;
mod starts;
pub mod store_tier;

pub use budget::CacheBudget;
pub use cache::{CacheKey, CacheStats, SynthCache};
pub use executor::SweepExecutor;
pub use fingerprint::{fingerprint, Fingerprint};
pub use starts::StartsCache;
pub use store_tier::{Provenance, StoredEntry};

use crate::bounds::Bounds;
use crate::error::SynthesisError;
use crate::flow::{self, FlowSpec, SynthReport};
use crate::redundancy::RedundancyModel;
use rchls_dfg::Dfg;
use rchls_reslib::Library;
use rchls_workloads::WorkloadError;
use serde::{map_get, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// An engine-level failure for one job.
///
/// Every variant's message is a pure function of the job's inputs (in
/// particular, infeasibility is reported canonically rather than with
/// the synthesizer's run-dependent detail), so batch outputs stay
/// byte-identical across worker counts and cache states.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The workload spec did not resolve through the source registry.
    Workload(WorkloadError),
    /// The job named an unregistered strategy id.
    UnknownStrategy(String),
    /// The job's flow named an unregistered pass id.
    Flow(SynthesisError),
    /// No design meets the job's bounds.
    Infeasible {
        /// The canonical workload spec.
        workload: String,
        /// The bounds that could not be met.
        bounds: Bounds,
        /// The strategy that found no design.
        strategy: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Workload(e) => write!(f, "{e}"),
            EngineError::UnknownStrategy(id) => {
                write!(f, "{id:?} is not a registered strategy")
            }
            EngineError::Flow(e) => write!(f, "{e}"),
            EngineError::Infeasible {
                workload,
                bounds,
                strategy,
            } => write!(f, "no {strategy} design for {workload} meets {bounds}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Workload(e) => Some(e),
            EngineError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkloadError> for EngineError {
    fn from(e: WorkloadError) -> EngineError {
        EngineError::Workload(e)
    }
}

/// One synthesis job, fully described by value: a workload spec plus
/// bounds, strategy id, flow, and redundancy model.
///
/// Serializes flat (`workload`, `latency`, `area`, `strategy`, `flow`,
/// `redundancy`); deserialization accepts job files that omit
/// `strategy`, `flow`, and `redundancy`, which default to `"ours"`, the
/// default flow, and the default model — so a minimal batch entry is
/// `{"workload": "builtin:fir16", "latency": 12, "area": 8}`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SynthJob {
    /// The workload spec (resolved through the source registry).
    pub workload: String,
    /// Latency bound `Ld` in cycles (must be positive).
    pub latency: u32,
    /// Area bound `Ad` in normalized units (must be positive).
    pub area: u32,
    /// Strategy registry id.
    pub strategy: String,
    /// Pass composition.
    pub flow: FlowSpec,
    /// Redundancy growth model.
    pub redundancy: RedundancyModel,
}

impl SynthJob {
    /// A job with the default strategy (`ours`), flow, and model.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero.
    #[must_use]
    pub fn new(workload: impl Into<String>, latency: u32, area: u32) -> SynthJob {
        let bounds = Bounds::new(latency, area);
        SynthJob {
            workload: workload.into(),
            latency: bounds.latency,
            area: bounds.area,
            strategy: "ours".to_owned(),
            flow: FlowSpec::default(),
            redundancy: RedundancyModel::default(),
        }
    }

    /// Replaces the strategy id.
    #[must_use]
    pub fn with_strategy(mut self, id: impl Into<String>) -> SynthJob {
        self.strategy = id.into();
        self
    }

    /// Replaces the flow spec.
    #[must_use]
    pub fn with_flow(mut self, flow: FlowSpec) -> SynthJob {
        self.flow = flow;
        self
    }

    /// Replaces the redundancy model.
    #[must_use]
    pub fn with_redundancy(mut self, model: RedundancyModel) -> SynthJob {
        self.redundancy = model;
        self
    }

    /// The job's bounds.
    #[must_use]
    pub fn bounds(&self) -> Bounds {
        Bounds::new(self.latency, self.area)
    }
}

impl Deserialize for SynthJob {
    fn from_value(v: &Value) -> Result<SynthJob, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::unexpected("map", v))?;
        let field = |name: &str| map_get(entries, name);
        let workload = String::from_value(
            field("workload").ok_or_else(|| serde::Error::missing_field("workload"))?,
        )?;
        let latency = u32::from_value(
            field("latency").ok_or_else(|| serde::Error::missing_field("latency"))?,
        )?;
        let area =
            u32::from_value(field("area").ok_or_else(|| serde::Error::missing_field("area"))?)?;
        if latency == 0 || area == 0 {
            return Err(serde::Error::custom(
                "latency and area bounds must be positive",
            ));
        }
        let mut job = SynthJob::new(workload, latency, area);
        if let Some(s) = field("strategy") {
            job.strategy = String::from_value(s)?;
        }
        if let Some(f) = field("flow") {
            job.flow = FlowSpec::from_value(f)?;
        }
        if let Some(r) = field("redundancy") {
            job.redundancy = RedundancyModel::from_value(r)?;
        }
        Ok(job)
    }
}

/// One job's result in a [`BatchReport`]: the canonical workload spec
/// (seed made explicit), the job facts, and either a report (wall time
/// scrubbed for determinism) or a deterministic error string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Canonical workload spec (the input spec when resolution failed).
    pub workload: String,
    /// The job's latency bound.
    pub latency_bound: u32,
    /// The job's area bound.
    pub area_bound: u32,
    /// The job's strategy id.
    pub strategy: String,
    /// The synthesis report, diagnostics scrubbed; `None` on error.
    pub report: Option<SynthReport>,
    /// Why the job produced no design; `None` on success.
    pub error: Option<String>,
}

/// A whole batch's outcomes plus session counters — the
/// diagnostics-carrying document `rchls batch` serializes.
///
/// Byte-identical for the same jobs at any worker count *and any cache
/// budget*: outcomes are in job order, wall times are scrubbed, error
/// strings are canonical, and the cache fields count distinct
/// fingerprints ever interned — cumulative *sizes*, never hit/miss
/// tallies (which racing workers skew) and never resident counts (which
/// eviction order skews). (Hit rates and resident bytes live in the
/// telemetry metrics registry, which makes no determinism promise.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Distinct synthesis points memoized in the engine's cache so far
    /// (cumulative; eviction never decrements it).
    pub memoized_points: usize,
    /// Distinct uniform start pools interned by the session's
    /// [`StartsCache`] so far — the ROADMAP's unbounded-growth watch
    /// number for long-running sessions.
    pub starts_pools: usize,
    /// Distinct allocation-first designs interned by the session so far.
    pub alloc_designs: usize,
    /// Per-job outcomes, in job order.
    pub outcomes: Vec<JobOutcome>,
}

/// A workload interned by an [`Engine`]: the canonical spec plus the
/// shared graph.
#[derive(Debug, Clone)]
pub struct InternedWorkload {
    /// The canonical spec string.
    pub spec: String,
    /// The shared graph.
    pub dfg: Arc<Dfg>,
}

/// A synthesis session: one library, an open-ended stream of jobs.
///
/// See the [module docs](self) for the full story; in short, an engine
/// interns everything a job references, memoizes every synthesis point,
/// and runs batches in parallel with deterministic output.
#[derive(Debug)]
pub struct Engine {
    library: Arc<Library>,
    executor: SweepExecutor,
    cache: SynthCache,
    budget: CacheBudget,
    workloads: RwLock<HashMap<String, InternedWorkload>>,
}

impl Engine {
    /// A session over `library` with one worker per CPU.
    #[must_use]
    pub fn new(library: Library) -> Engine {
        Engine {
            library: Arc::new(library),
            executor: SweepExecutor::default(),
            cache: SynthCache::new(),
            budget: CacheBudget::UNLIMITED,
            workloads: RwLock::new(HashMap::new()),
        }
    }

    /// Replaces the batch worker count (`0` = one worker per CPU). The
    /// worker count never changes results, only wall time.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Engine {
        self.executor = SweepExecutor::new(jobs);
        self
    }

    /// Applies a session cache budget across all four cache layers
    /// (synthesis reports, start pools, alloc designs, scratch arenas).
    /// The budget changes what stays *resident*, never what any request
    /// returns — evicted work is simply recomputed.
    #[must_use]
    pub fn with_cache_budget(mut self, budget: CacheBudget) -> Engine {
        self.budget = budget;
        self.cache.set_budget(budget);
        self
    }

    /// Attaches an on-disk [`rchls_store::ResultStore`] as the second
    /// cache tier: memory misses probe the store, fresh syntheses write
    /// back. Tiering changes where answers come from, never what they
    /// are — store-served reports are byte-identical (wall time
    /// scrubbed) to freshly computed ones in every deterministic
    /// artifact.
    #[must_use]
    pub fn with_store(self, store: Arc<rchls_store::ResultStore>) -> Engine {
        self.cache.set_store(store);
        self
    }

    /// The attached on-disk store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<rchls_store::ResultStore>> {
        self.cache.store()
    }

    /// The session cache budget.
    #[must_use]
    pub fn cache_budget(&self) -> CacheBudget {
        self.budget
    }

    /// The session synthesis cache (and through it the starts cache and
    /// scratch pool).
    #[must_use]
    pub fn cache(&self) -> &SynthCache {
        &self.cache
    }

    /// Approximate resident bytes across the three memo layers plus the
    /// pooled scratch arenas — the number a budget bounds.
    #[must_use]
    pub fn resident_cache_bytes(&self) -> usize {
        self.cache.resident_bytes()
            + self.cache.starts_cache().resident_bytes()
            + self.cache.scratch_pool().pooled_bytes()
    }

    /// Entries evicted across all cache layers since construction.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions() + self.cache.starts_cache().evictions()
    }

    /// The session library.
    #[must_use]
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// The batch worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.executor.jobs()
    }

    /// Hit/miss counters of the session cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Distinct synthesis points memoized so far — cumulative over the
    /// session, independent of eviction, so it is identical at any
    /// worker count or cache budget.
    #[must_use]
    pub fn memoized_points(&self) -> usize {
        self.cache.seen_points()
    }

    /// Hit/miss counters of the session's uniform start-pool cache.
    #[must_use]
    pub fn starts_cache_stats(&self) -> CacheStats {
        self.cache.starts_cache().stats()
    }

    /// Hit/miss counters of the session's allocation-first design cache.
    #[must_use]
    pub fn alloc_cache_stats(&self) -> CacheStats {
        self.cache.starts_cache().alloc_stats()
    }

    /// Distinct uniform start pools interned so far (cumulative,
    /// eviction-independent).
    #[must_use]
    pub fn starts_pools(&self) -> usize {
        self.cache.starts_cache().seen_len()
    }

    /// Distinct allocation-first designs interned so far (cumulative,
    /// eviction-independent).
    #[must_use]
    pub fn alloc_designs(&self) -> usize {
        self.cache.starts_cache().alloc_seen_len()
    }

    /// Resolves a workload spec through the source registry, interning
    /// the result: the first resolution of a spec loads (or generates)
    /// the graph, every later one returns the shared [`Arc`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Workload`] when the spec does not resolve.
    pub fn workload(&self, spec: &str) -> Result<InternedWorkload, EngineError> {
        if let Some(found) = crate::sync::read_unpoisoned(&self.workloads).get(spec) {
            return Ok(found.clone());
        }
        let loaded = rchls_workloads::load_workload(spec)?;
        let mut table = crate::sync::write_unpoisoned(&self.workloads);
        // Under the write lock, prefer any entry that appeared since the
        // read-lock miss — either this spelling (a racing resolver) or
        // the canonical one (`random:30x6` after `random:30x6@0`) — so
        // every spelling of a workload shares one graph.
        let entry = match table.get(spec).or_else(|| table.get(&loaded.spec)) {
            Some(existing) => existing.clone(),
            None => InternedWorkload {
                spec: loaded.spec.clone(),
                dfg: Arc::new(loaded.dfg),
            },
        };
        table
            .entry(spec.to_owned())
            .or_insert_with(|| entry.clone());
        // Index the canonical spelling too.
        table
            .entry(entry.spec.clone())
            .or_insert_with(|| entry.clone());
        Ok(entry)
    }

    /// Number of distinct workloads interned so far.
    #[must_use]
    pub fn interned_workloads(&self) -> usize {
        let table = crate::sync::read_unpoisoned(&self.workloads);
        let mut specs: Vec<&str> = table.values().map(|w| w.spec.as_str()).collect();
        specs.sort_unstable();
        specs.dedup();
        specs.len()
    }

    /// Synthesizes one job through the session cache.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] when the workload, strategy, or flow
    /// does not resolve, or when no design meets the bounds.
    pub fn synth(&self, job: &SynthJob) -> Result<SynthReport, EngineError> {
        let workload = self.workload(&job.workload)?;
        self.synth_resolved(job, &workload)
    }

    /// Runs a batch in parallel over the session executor.
    ///
    /// Results are in job order and independent of the worker count.
    /// Workloads are resolved (and interned) up front on the calling
    /// thread, so a batch over `n` jobs with `k` distinct specs loads
    /// exactly `k` graphs.
    #[must_use]
    pub fn synth_batch(&self, jobs: &[SynthJob]) -> Vec<Result<SynthReport, EngineError>> {
        let resolved: Vec<(&SynthJob, Result<InternedWorkload, EngineError>)> = jobs
            .iter()
            .map(|job| (job, self.workload(&job.workload)))
            .collect();
        self.executor.run(&resolved, |(job, workload)| {
            let workload = workload.as_ref().map_err(Clone::clone)?;
            self.synth_resolved(job, workload)
        })
    }

    /// Runs a batch and assembles the deterministic outcome document.
    #[must_use]
    pub fn run_batch(&self, jobs: &[SynthJob]) -> BatchReport {
        let results = self.synth_batch(jobs);
        let outcomes = jobs
            .iter()
            .zip(results)
            .map(|(job, result)| {
                // Echo the canonical spec (now interned) so randomized
                // runs are reproducible from the outcome alone; fall
                // back to the input spec when resolution failed.
                let workload = match &result {
                    Err(EngineError::Workload(_)) => job.workload.clone(),
                    _ => self
                        .workload(&job.workload)
                        .map(|w| w.spec)
                        .unwrap_or_else(|_| job.workload.clone()),
                };
                let (report, error) = match result {
                    Ok(report) => (
                        Some(SynthReport {
                            diagnostics: report.diagnostics.scrubbed(),
                            ..report
                        }),
                        None,
                    ),
                    Err(e) => (None, Some(e.to_string())),
                };
                JobOutcome {
                    workload,
                    latency_bound: job.latency,
                    area_bound: job.area,
                    strategy: job.strategy.clone(),
                    report,
                    error,
                }
            })
            .collect();
        BatchReport {
            jobs: jobs.len(),
            memoized_points: self.memoized_points(),
            starts_pools: self.starts_pools(),
            alloc_designs: self.alloc_designs(),
            outcomes,
        }
    }

    /// The cached synthesis of one job whose workload is already
    /// resolved. Validation (flow, strategy) happens before the cache so
    /// every failure mode has a canonical, order-independent message.
    fn synth_resolved(
        &self,
        job: &SynthJob,
        workload: &InternedWorkload,
    ) -> Result<SynthReport, EngineError> {
        job.flow.resolve().map_err(EngineError::Flow)?;
        let strategy = flow::strategy(&job.strategy)
            .ok_or_else(|| EngineError::UnknownStrategy(job.strategy.clone()))?;
        self.cache
            .synthesize_with_workload(
                &workload.dfg,
                &self.library,
                job.bounds(),
                &job.flow,
                job.redundancy,
                &*strategy,
                Some(&workload.spec),
            )
            .ok_or_else(|| EngineError::Infeasible {
                workload: workload.spec.clone(),
                bounds: job.bounds(),
                strategy: job.strategy.clone(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthRequest;

    fn engine() -> Engine {
        Engine::new(Library::table1())
    }

    #[test]
    fn engine_matches_the_per_call_api() {
        let e = engine();
        let job = SynthJob::new("builtin:figure4a", 6, 4);
        let via_engine = e.synth(&job).unwrap();
        let dfg = rchls_workloads::figure4a();
        let direct = flow::strategy("ours")
            .unwrap()
            .run(&SynthRequest::new(&dfg, e.library(), job.bounds()))
            .unwrap();
        assert_eq!(via_engine.design, direct.design);
    }

    #[test]
    fn workloads_are_interned_once_per_spec() {
        let e = engine();
        let a = e.workload("random:20x4@3").unwrap();
        let b = e.workload("random:20x4@3").unwrap();
        assert!(Arc::ptr_eq(&a.dfg, &b.dfg));
        // The non-canonical spelling shares the canonical entry.
        let c = e.workload("builtin:ewf").unwrap();
        assert!(!Arc::ptr_eq(&a.dfg, &c.dfg));
        assert_eq!(e.interned_workloads(), 2);
        let e2 = engine();
        let d = e2.workload("random:20x4").unwrap();
        assert_eq!(d.spec, "random:20x4@0");
        let d2 = e2.workload("random:20x4@0").unwrap();
        assert!(Arc::ptr_eq(&d.dfg, &d2.dfg));
        assert_eq!(e2.interned_workloads(), 1);
        // ... and in the opposite order: the canonical spelling first,
        // the defaulted one after, still one shared graph.
        let e3 = engine();
        let f = e3.workload("random:20x4@0").unwrap();
        let f2 = e3.workload("random:20x4").unwrap();
        assert!(Arc::ptr_eq(&f.dfg, &f2.dfg));
        assert_eq!(e3.interned_workloads(), 1);
    }

    #[test]
    fn repeated_jobs_hit_the_session_cache() {
        let e = engine();
        let job = SynthJob::new("builtin:diffeq", 6, 11);
        let first = e.synth(&job).unwrap();
        let second = e.synth(&job).unwrap();
        assert_eq!(first, second);
        assert_eq!(e.cache_stats().hits, 1);
        assert_eq!(e.cache_stats().misses, 1);
        assert_eq!(e.memoized_points(), 1);
    }

    #[test]
    fn batch_results_are_in_job_order_and_jobs_invariant() {
        let jobs: Vec<SynthJob> = (0..6)
            .flat_map(|i| {
                [
                    SynthJob::new("builtin:figure4a", 5 + i % 3, 4),
                    SynthJob::new(format!("random:12x3@{i}"), 8, 6).with_strategy("combined"),
                ]
            })
            .collect();
        let reference: Vec<_> = Engine::new(Library::table1())
            .with_jobs(1)
            .run_batch(&jobs)
            .outcomes;
        for workers in [2usize, 8] {
            let out = Engine::new(Library::table1())
                .with_jobs(workers)
                .run_batch(&jobs);
            assert_eq!(out.outcomes, reference, "workers = {workers}");
            assert_eq!(out.jobs, jobs.len());
        }
    }

    #[test]
    fn batch_reports_scrub_wall_time() {
        let e = engine();
        let batch = e.run_batch(&[SynthJob::new("builtin:figure4a", 6, 4)]);
        let report = batch.outcomes[0].report.as_ref().unwrap();
        assert_eq!(report.diagnostics.wall_time_micros, 0);
        // ... while the direct API keeps the measured time.
        assert_eq!(batch.memoized_points, 1);
    }

    #[test]
    fn every_failure_mode_has_a_canonical_error() {
        let e = engine();
        let bad_workload = e.synth(&SynthJob::new("warp:9", 6, 4)).unwrap_err();
        assert!(matches!(bad_workload, EngineError::Workload(_)));
        assert!(bad_workload.to_string().contains("warp"));
        let bad_strategy = e
            .synth(&SynthJob::new("builtin:figure4a", 6, 4).with_strategy("nope"))
            .unwrap_err();
        assert!(matches!(bad_strategy, EngineError::UnknownStrategy(_)));
        let bad_flow = e
            .synth(
                &SynthJob::new("builtin:figure4a", 6, 4)
                    .with_flow(FlowSpec::default().with_scheduler("warp")),
            )
            .unwrap_err();
        assert!(matches!(bad_flow, EngineError::Flow(_)));
        let infeasible = e
            .synth(&SynthJob::new("builtin:figure4a", 3, 99))
            .unwrap_err();
        assert_eq!(
            infeasible.to_string(),
            "no ours design for builtin:figure4a meets Ld=3, Ad=99"
        );
        // Infeasibility is reported identically on the cached repeat.
        let again = e
            .synth(&SynthJob::new("builtin:figure4a", 3, 99))
            .unwrap_err();
        assert_eq!(infeasible, again);
    }

    #[test]
    fn malformed_file_workload_errors_surface_path_and_line_in_batch() {
        let dir = std::env::temp_dir().join("rchls-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.dfg");
        std::fs::write(&path, "graph g\nop a add\na -> ghost\n").unwrap();
        let e = engine();
        let batch = e.run_batch(&[SynthJob::new(format!("file:{}", path.display()), 6, 4)]);
        let error = batch.outcomes[0].error.as_deref().unwrap();
        assert!(error.contains("broken.dfg"), "{error}");
        assert!(error.contains("line 3"), "{error}");
        assert!(error.contains("ghost"), "{error}");
    }

    #[test]
    fn jobs_deserialize_with_defaults() {
        let text = r#"[
            {"workload": "builtin:fir16", "latency": 12, "area": 8},
            {"workload": "random:24x4@9", "latency": 10, "area": 7,
             "strategy": "baseline",
             "flow": {"scheduler": "force-directed", "binder": "left-edge",
                      "victim": "max-delay", "refine": "greedy"}}
        ]"#;
        let jobs: Vec<SynthJob> = serde_json::from_str(text).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].strategy, "ours");
        assert_eq!(jobs[0].flow, FlowSpec::default());
        assert_eq!(jobs[1].strategy, "baseline");
        assert_eq!(jobs[1].flow.scheduler, "force-directed");
        // Serialize -> deserialize round-trips.
        let back: Vec<SynthJob> =
            serde_json::from_str(&serde_json::to_string(&jobs).unwrap()).unwrap();
        assert_eq!(back, jobs);
        // Zero bounds and missing fields are rejected.
        assert!(serde_json::from_str::<SynthJob>(
            r#"{"workload": "builtin:fir16", "latency": 0, "area": 8}"#
        )
        .is_err());
        assert!(serde_json::from_str::<SynthJob>(r#"{"latency": 1, "area": 8}"#).is_err());
    }

    #[test]
    fn batch_report_serializes_and_round_trips() {
        let e = engine();
        let batch = e.run_batch(&[
            SynthJob::new("builtin:figure4a", 6, 4),
            SynthJob::new("builtin:figure4a", 3, 99),
        ]);
        assert!(batch.outcomes[0].error.is_none());
        assert!(batch.outcomes[1].report.is_none());
        let json = serde_json::to_string_pretty(&batch).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
    }
}
