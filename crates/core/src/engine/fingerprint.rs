//! Stable 64-bit content fingerprints for any serializable value.
//!
//! The fingerprint walks the serde shim's [`Value`] tree with an FNV-1a
//! accumulator, tagging every node kind so differently shaped values
//! cannot alias (e.g. the string `"1"` vs the integer `1`, or `[1, 2]`
//! vs `[[1], 2]`). Map entries are hashed in the serializer's order,
//! which the shim guarantees is deterministic (struct declaration order;
//! dynamic maps sorted by key) — so the fingerprint is a pure function
//! of content, stable across processes and platforms.

use serde::{Serialize, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An FNV-1a accumulator over serialized value trees.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Fingerprint {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Folds one serializable value into the fingerprint.
    pub fn update<T: Serialize + ?Sized>(&mut self, value: &T) {
        self.walk(&value.to_value());
    }

    /// The accumulated 64-bit fingerprint.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }

    fn byte(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn walk(&mut self, v: &Value) {
        match v {
            Value::Null => self.byte(0),
            Value::Bool(b) => {
                self.byte(1);
                self.byte(u8::from(*b));
            }
            Value::Int(i) => {
                self.byte(2);
                self.bytes(&i.to_le_bytes());
            }
            Value::UInt(u) => {
                self.byte(3);
                self.bytes(&u.to_le_bytes());
            }
            Value::Float(x) => {
                self.byte(4);
                self.bytes(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                self.byte(5);
                self.bytes(&(s.len() as u64).to_le_bytes());
                self.bytes(s.as_bytes());
            }
            Value::Seq(items) => {
                self.byte(6);
                self.bytes(&(items.len() as u64).to_le_bytes());
                for item in items {
                    self.walk(item);
                }
            }
            Value::Map(entries) => {
                self.byte(7);
                self.bytes(&(entries.len() as u64).to_le_bytes());
                for (k, val) in entries {
                    self.walk(k);
                    self.walk(val);
                }
            }
        }
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

/// Fingerprints a single value (convenience wrapper).
#[must_use]
pub fn fingerprint<T: Serialize + ?Sized>(value: &T) -> u64 {
    let mut fp = Fingerprint::new();
    fp.update(value);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equal_content_equal_fingerprint() {
        assert_eq!(
            fingerprint(&vec![1u32, 2, 3]),
            fingerprint(&vec![1u32, 2, 3])
        );
        assert_eq!(fingerprint("abc"), fingerprint(&"abc".to_string()));
    }

    #[test]
    fn shape_and_content_changes_move_the_fingerprint() {
        assert_ne!(fingerprint(&vec![1u32, 2]), fingerprint(&vec![2u32, 1]));
        assert_ne!(fingerprint(&1u32), fingerprint(&"1"));
        assert_ne!(fingerprint(&Some(0u32)), fingerprint(&Option::<u32>::None));
        assert_ne!(
            fingerprint(&vec![vec![1u32], vec![2]]),
            fingerprint(&vec![vec![1u32, 2]])
        );
    }

    #[test]
    fn hashmap_fingerprint_is_order_independent() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..100u32 {
            a.insert(format!("k{i}"), i);
        }
        for i in (0..100u32).rev() {
            b.insert(format!("k{i}"), i);
        }
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn real_graphs_fingerprint_stably() {
        let a = rchls_workloads::fir16();
        let b = rchls_workloads::fir16();
        let c = rchls_workloads::ewf();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }
}
