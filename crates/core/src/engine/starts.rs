//! Session interning of uniform feasible start pools.
//!
//! Every refining flow (the `"greedy"` pass, the `"redundancy"`
//! strategy) begins by scheduling and binding **every uniform
//! one-version-per-class assignment** that meets the bounds — a pool
//! that depends only on `(graph, library, bounds, scheduler, binder)`.
//! Sweeps and batches hit the same pool over and over across strategies
//! and flows that differ only in their victim/refine slots; a
//! [`StartsCache`] computes each pool once per session and replays it
//! (including the deterministic scheduler/binder *call counts* the fresh
//! computation would have booked, so diagnostics stay byte-identical
//! between a cache hit and a miss — only the wall time disappears).
//!
//! The cache is owned by the session [`SynthCache`](crate::engine::SynthCache)
//! alongside the scratch pool and travels to every
//! [`Synthesizer`](crate::Synthesizer) through the
//! [`SynthRequest`](crate::SynthRequest), so engine batches, explorer
//! sweeps, and CLI sweeps all share one pool table per session.

use crate::bounds::Bounds;
use crate::engine::budget::BudgetedTable;
use crate::engine::cache::CacheStats;
use crate::engine::fingerprint::Fingerprint;
use crate::error::SynthesisError;
use crate::flow::{Diagnostics, FlowState};
use crate::synth::Synthesizer;
use rchls_bind::{Assignment, Binding};
use rchls_sched::Schedule;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One interned pool plus the request facts that detect fingerprint
/// collisions and the pass-call counts to replay on every hit.
#[derive(Debug, Clone)]
struct StartsEntry {
    bounds: Bounds,
    scheduler: String,
    binder: String,
    states: Vec<FlowState>,
    sched_calls: u32,
    bind_calls: u32,
}

impl StartsEntry {
    /// Approximate bytes this entry keeps resident — the size-accounting
    /// input for the cache's LRU budget.
    fn approx_bytes(&self) -> usize {
        size_of::<StartsEntry>()
            + self.scheduler.capacity()
            + self.binder.capacity()
            + self
                .states
                .iter()
                .map(FlowState::approx_bytes)
                .sum::<usize>()
    }
}

/// One interned allocation-first design (see
/// [`crate::alloc_search::best_allocation_design_diag`]) plus the
/// completeness flag its search reported.
#[derive(Debug, Clone)]
struct AllocEntry {
    bounds: Bounds,
    design: Option<(Assignment, Schedule, Binding)>,
    cap_hit: bool,
}

impl AllocEntry {
    /// Approximate bytes this entry keeps resident — the size-accounting
    /// input for the cache's LRU budget.
    fn approx_bytes(&self) -> usize {
        size_of::<AllocEntry>()
            + self.design.as_ref().map_or(0, |(a, s, b)| {
                a.approx_heap_bytes() + s.approx_heap_bytes() + b.approx_heap_bytes()
            })
    }
}

/// A thread-safe memo table of refine-portfolio ingredients: the uniform
/// feasible start pools (keyed by a content fingerprint of `(dfg,
/// library, bounds, scheduler id, binder id)`) and the allocation-first
/// designs (keyed by `(dfg, library, bounds)` — the allocation search
/// runs its own list scheduler, independent of the flow's passes).
///
/// Mirrors the [`SynthCache`](crate::engine::SynthCache) locking discipline: the
/// lock is never held across a computation, racing workers compute the
/// same deterministic pool, and a fingerprint collision (an entry whose
/// recorded request facts differ) is computed fresh and left uncached
/// rather than answered wrongly.
#[derive(Default)]
pub struct StartsCache {
    entries: Mutex<BudgetedTable<StartsEntry>>,
    alloc: Mutex<BudgetedTable<AllocEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    alloc_hits: AtomicU64,
    alloc_misses: AtomicU64,
}

impl StartsCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> StartsCache {
        StartsCache::default()
    }

    /// Number of *resident* interned pools. Under a budget this can
    /// shrink; for the deterministic ever-interned count use
    /// [`StartsCache::seen_len`].
    #[must_use]
    pub fn len(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).len()
    }

    /// `true` when no pool is currently interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of *resident* interned allocation-first designs (see
    /// [`StartsCache::alloc_seen_len`] for the deterministic count).
    #[must_use]
    pub fn alloc_len(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.alloc).len()
    }

    /// Number of distinct start pools ever interned — independent of
    /// eviction, so deterministic documents report this.
    #[must_use]
    pub fn seen_len(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).seen_len()
    }

    /// Number of distinct allocation-first designs ever interned.
    #[must_use]
    pub fn alloc_seen_len(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.alloc).seen_len()
    }

    /// Approximate resident bytes across both tables.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).resident_bytes()
            + crate::sync::lock_unpoisoned(&self.alloc).resident_bytes()
    }

    /// Entries evicted from both tables since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        crate::sync::lock_unpoisoned(&self.entries).evictions()
            + crate::sync::lock_unpoisoned(&self.alloc).evictions()
    }

    /// Applies the session budget's shares to the pool and alloc-design
    /// tables, evicting immediately when over.
    pub(crate) fn set_budget(&self, pools: Option<usize>, alloc: Option<usize>) {
        let evicted = crate::sync::lock_unpoisoned(&self.entries).set_budget(pools);
        crate::obs::starts_cache_evictions().add(evicted);
        let evicted = crate::sync::lock_unpoisoned(&self.alloc).set_budget(alloc);
        crate::obs::alloc_cache_evictions().add(evicted);
    }

    /// Hit/miss counters for the uniform start pool table. Collisions
    /// count as misses (the pool is computed fresh).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Hit/miss counters for the allocation-first design table.
    #[must_use]
    pub fn alloc_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.alloc_hits.load(Ordering::Relaxed),
            misses: self.alloc_misses.load(Ordering::Relaxed),
        }
    }

    /// The uniform feasible start pool for `synth` at `bounds`: answered
    /// from the cache when interned (replaying the recorded
    /// scheduler/binder call counts into the synthesizer's phase
    /// accounting), computed fresh — and interned — otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the fresh computation's [`SynthesisError`] (library
    /// gaps, malformed graphs); errors are never cached.
    pub(crate) fn get_or_compute(
        &self,
        synth: &Synthesizer<'_>,
        bounds: Bounds,
    ) -> Result<Vec<FlowState>, SynthesisError> {
        let flow = synth.flow();
        let mut fp = Fingerprint::new();
        fp.update("uniform-starts");
        fp.update(synth.dfg());
        fp.update(synth.library());
        fp.update(&bounds);
        fp.update(&flow.scheduler);
        fp.update(&flow.binder);
        let key = fp.finish();

        if let Some(entry) = crate::sync::lock_unpoisoned(&self.entries).get(key) {
            if entry.bounds == bounds
                && entry.scheduler == flow.scheduler
                && entry.binder == flow.binder
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::starts_cache_hits().incr();
                synth.replay_pass_calls(entry.sched_calls, entry.bind_calls);
                return Ok(entry.states.clone());
            }
            // Fingerprint collision: compute fresh, don't poison the
            // existing entry.
            self.misses.fetch_add(1, Ordering::Relaxed);
            crate::obs::starts_cache_misses().incr();
            return synth.uniform_feasible_starts_fresh(bounds);
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::starts_cache_misses().incr();
        let _span = rchls_telemetry::span!("starts.compute");
        let before = synth.pass_call_counts();
        let states = synth.uniform_feasible_starts_fresh(bounds)?;
        let after = synth.pass_call_counts();
        let entry = StartsEntry {
            bounds,
            scheduler: flow.scheduler.clone(),
            binder: flow.binder.clone(),
            states: states.clone(),
            sched_calls: after.0 - before.0,
            bind_calls: after.1 - before.1,
        };
        let bytes = entry.approx_bytes();
        let (evicted, resident) = {
            let mut table = crate::sync::lock_unpoisoned(&self.entries);
            let evicted = table.insert(key, entry, bytes);
            (evicted, table.resident_bytes())
        };
        crate::obs::starts_cache_evictions().add(evicted);
        crate::obs::starts_cache_resident_bytes().record(resident as u64);
        Ok(states)
    }
}

impl StartsCache {
    /// The allocation-first portfolio design for `synth` at `bounds`,
    /// interned per `(dfg, library, bounds)`: the design (or its
    /// absence) and the search's cap-hit flag are recorded into
    /// `diagnostics` exactly as a fresh
    /// [`best_allocation_design_diag`](crate::alloc_search::best_allocation_design_diag)
    /// run would record them, so reports are byte-identical across cache
    /// states.
    pub(crate) fn alloc_design(
        &self,
        synth: &Synthesizer<'_>,
        bounds: Bounds,
        diagnostics: &mut Diagnostics,
    ) -> Option<(Assignment, Schedule, Binding)> {
        let mut fp = Fingerprint::new();
        fp.update("alloc-design");
        fp.update(synth.dfg());
        fp.update(synth.library());
        fp.update(&bounds);
        let key = fp.finish();

        if let Some(entry) = crate::sync::lock_unpoisoned(&self.alloc).get(key) {
            if entry.bounds == bounds {
                self.alloc_hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::alloc_cache_hits().incr();
                diagnostics.alloc_cap_hit |= entry.cap_hit;
                return entry.design.clone();
            }
            // Fingerprint collision: compute fresh, leave the entry be.
            self.alloc_misses.fetch_add(1, Ordering::Relaxed);
            crate::obs::alloc_cache_misses().incr();
            return crate::alloc_search::best_allocation_design_diag(
                synth.dfg(),
                synth.library(),
                bounds,
                diagnostics,
            );
        }

        self.alloc_misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::alloc_cache_misses().incr();
        let mut fresh = Diagnostics::default();
        let design = crate::alloc_search::best_allocation_design_diag(
            synth.dfg(),
            synth.library(),
            bounds,
            &mut fresh,
        );
        diagnostics.alloc_cap_hit |= fresh.alloc_cap_hit;
        let entry = AllocEntry {
            bounds,
            design: design.clone(),
            cap_hit: fresh.alloc_cap_hit,
        };
        let bytes = entry.approx_bytes();
        let (evicted, resident) = {
            let mut table = crate::sync::lock_unpoisoned(&self.alloc);
            let evicted = table.insert(key, entry, bytes);
            (evicted, table.resident_bytes())
        };
        crate::obs::alloc_cache_evictions().add(evicted);
        crate::obs::alloc_cache_resident_bytes().record(resident as u64);
        design
    }
}

impl fmt::Debug for StartsCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StartsCache")
            .field("pools", &self.len())
            .field("alloc_designs", &self.alloc_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use rchls_reslib::Library;

    #[test]
    fn pools_are_interned_once_and_replay_call_counts() {
        let dfg = rchls_workloads::figure4a();
        let lib = Library::table1();
        let cache = StartsCache::new();
        let bounds = Bounds::new(6, 6);

        let fresh_synth = Synthesizer::new(&dfg, &lib);
        let fresh = fresh_synth.uniform_feasible_starts_fresh(bounds).unwrap();
        let fresh_counts = fresh_synth.pass_call_counts();
        assert!(fresh_counts.0 > 0, "starts must schedule something");

        let miss_synth = Synthesizer::new(&dfg, &lib);
        let first = cache.get_or_compute(&miss_synth, bounds).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(miss_synth.pass_call_counts(), fresh_counts);

        // The hit returns the same pool and books the same call counts
        // without scheduling anything.
        let hit_synth = Synthesizer::new(&dfg, &lib);
        let second = cache.get_or_compute(&hit_synth, bounds).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(hit_synth.pass_call_counts(), fresh_counts);
        assert_eq!(first.len(), second.len());
        assert_eq!(first.len(), fresh.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.schedule, b.schedule);
            assert_eq!(a.binding, b.binding);
        }

        // A different bound pair is a different pool.
        let other_synth = Synthesizer::new(&dfg, &lib);
        let _ = cache
            .get_or_compute(&other_synth, Bounds::new(8, 8))
            .unwrap();
        assert_eq!(cache.len(), 2);

        // ... and a different scheduler/binder slot is too.
        let force = Synthesizer::with_flow(
            &dfg,
            &lib,
            &FlowSpec::default().with_scheduler("force-directed"),
        )
        .unwrap();
        let _ = cache.get_or_compute(&force, bounds).unwrap();
        assert_eq!(cache.len(), 3);
    }
}
