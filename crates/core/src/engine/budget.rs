//! The session cache budget and the size-accounted LRU table every
//! engine cache layer builds on.
//!
//! ROADMAP item 1 flags unbounded cache growth as the blocker for
//! long-running sessions: the [`SynthCache`](crate::engine::SynthCache),
//! the [`StartsCache`](crate::engine::StartsCache) (two tables), and the
//! [`ScratchPool`](crate::ScratchPool) all retain everything forever. A
//! [`CacheBudget`] splits one byte allowance across those four layers,
//! and a [`BudgetedTable`] enforces a layer's share with least-recently-
//! used eviction over approximate entry sizes.
//!
//! Eviction never changes synthesis outputs — an evicted entry is simply
//! recomputed on the next request, and every cached artifact replays
//! deterministically (reports are pure values; start pools replay their
//! recorded pass-call counts) — so a session under budget 0 answers
//! byte-identically to one with an unlimited cache. What *is*
//! load-order-dependent is which keys are resident at any instant, which
//! is why deterministic documents (see
//! [`BatchReport`](crate::engine::BatchReport)) report cumulative
//! distinct keys ever interned (the `seen` set here), never resident
//! counts.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// A session's total cache memory allowance, split across the engine's
/// four cache layers (synthesis reports, start pools, alloc designs,
/// scratch arenas).
///
/// The default is [`CacheBudget::UNLIMITED`] — the pre-budget behavior,
/// where nothing is ever evicted. A limited budget of 0 disables
/// caching entirely (every entry is evicted on insert) without changing
/// any output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheBudget {
    total: Option<u64>,
}

impl CacheBudget {
    /// No budget: caches grow without bound (the historical behavior).
    pub const UNLIMITED: CacheBudget = CacheBudget { total: None };

    /// A budget of `total_bytes` across all cache layers.
    #[must_use]
    pub fn limited(total_bytes: u64) -> CacheBudget {
        CacheBudget {
            total: Some(total_bytes),
        }
    }

    /// The total allowance in bytes (`None` = unlimited).
    #[must_use]
    pub fn total_bytes(self) -> Option<u64> {
        self.total
    }

    /// Parses a budget spec: `unlimited` (or `none`), or a byte count
    /// with an optional `B`/`KiB`/`MiB`/`GiB` suffix (case-insensitive;
    /// `KB`/`MB`/`GB` are accepted as the same binary units).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unparsable specs or values
    /// that overflow a `u64`.
    pub fn parse(spec: &str) -> Result<CacheBudget, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("unlimited") || spec.eq_ignore_ascii_case("none") {
            return Ok(CacheBudget::UNLIMITED);
        }
        let lower = spec.to_ascii_lowercase();
        let (digits, multiplier) = if let Some(n) = lower
            .strip_suffix("gib")
            .or_else(|| lower.strip_suffix("gb"))
        {
            (n, 1u64 << 30)
        } else if let Some(n) = lower
            .strip_suffix("mib")
            .or_else(|| lower.strip_suffix("mb"))
        {
            (n, 1u64 << 20)
        } else if let Some(n) = lower
            .strip_suffix("kib")
            .or_else(|| lower.strip_suffix("kb"))
        {
            (n, 1u64 << 10)
        } else if let Some(n) = lower.strip_suffix('b') {
            (n, 1)
        } else {
            (lower.as_str(), 1)
        };
        let value: u64 = digits.trim().parse().map_err(|_| {
            format!("invalid cache budget {spec:?} (expected e.g. 64KiB, 512MiB, unlimited)")
        })?;
        value
            .checked_mul(multiplier)
            .map(CacheBudget::limited)
            .ok_or_else(|| format!("cache budget {spec:?} overflows"))
    }

    /// The synthesis-report layer's share (8/16 of the total).
    #[must_use]
    pub(crate) fn synth_share(self) -> Option<usize> {
        self.share(8)
    }

    /// The start-pool layer's share (4/16 of the total).
    #[must_use]
    pub(crate) fn starts_share(self) -> Option<usize> {
        self.share(4)
    }

    /// The alloc-design layer's share (2/16 of the total).
    #[must_use]
    pub(crate) fn alloc_share(self) -> Option<usize> {
        self.share(2)
    }

    /// The scratch-arena pool's share (2/16 of the total).
    #[must_use]
    pub(crate) fn scratch_share(self) -> Option<usize> {
        self.share(2)
    }

    fn share(self, sixteenths: u64) -> Option<usize> {
        self.total.map(|t| (t / 16 * sixteenths) as usize)
    }
}

impl fmt::Display for CacheBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.total {
            None => write!(f, "unlimited"),
            Some(b) => write!(f, "{b} B"),
        }
    }
}

/// One resident entry: the value, the byte size it was booked at, and
/// the recency tick LRU eviction orders by.
#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: usize,
    last_used: u64,
}

/// A size-accounted LRU map from 64-bit fingerprints to cache entries.
///
/// Not thread-safe by itself — each cache layer wraps one in its
/// existing `Mutex`, so recency updates piggyback on the lock the
/// lookup already holds. Eviction scans for the minimum recency tick
/// (`O(resident)` per evicted entry); resident counts under any sane
/// budget are small enough that this beats maintaining an intrusive
/// list, and the scan only runs on inserts that exceed the budget.
///
/// The table also remembers every key ever inserted (`seen`, 8 bytes
/// per key) so deterministic session facts can count distinct work
/// independent of what eviction left resident.
#[derive(Debug)]
pub(crate) struct BudgetedTable<V> {
    entries: HashMap<u64, Slot<V>>,
    seen: HashSet<u64>,
    resident_bytes: usize,
    budget: Option<usize>,
    tick: u64,
    evictions: u64,
}

impl<V> Default for BudgetedTable<V> {
    fn default() -> BudgetedTable<V> {
        BudgetedTable {
            entries: HashMap::new(),
            seen: HashSet::new(),
            resident_bytes: 0,
            budget: None,
            tick: 0,
            evictions: 0,
        }
    }
}

impl<V> BudgetedTable<V> {
    /// Replaces the byte budget (`None` = unlimited), evicting
    /// immediately if the resident set now exceeds it. Returns the
    /// number of entries evicted.
    pub fn set_budget(&mut self, budget: Option<usize>) -> u64 {
        self.budget = budget;
        self.evict_to_budget()
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|slot| {
            slot.last_used = tick;
            &slot.value
        })
    }

    /// Inserts `key` booked at `bytes`, then evicts least-recently-used
    /// entries (possibly including the one just inserted, under a tiny
    /// budget) until the resident bytes fit the budget. Returns the
    /// number of entries evicted.
    pub fn insert(&mut self, key: u64, value: V, bytes: usize) -> u64 {
        self.tick += 1;
        self.seen.insert(key);
        let slot = Slot {
            value,
            bytes,
            last_used: self.tick,
        };
        if let Some(old) = self.entries.insert(key, slot) {
            self.resident_bytes -= old.bytes;
        }
        self.resident_bytes += bytes;
        self.evict_to_budget()
    }

    fn evict_to_budget(&mut self) -> u64 {
        let Some(budget) = self.budget else { return 0 };
        let mut evicted = 0;
        while self.resident_bytes > budget && !self.entries.is_empty() {
            // Ticks are unique, so `last_used` alone already picks one
            // entry; the key tie-break keeps the choice independent of
            // hash iteration order even if that ever changes.
            let key = *self
                .entries
                // rchls-lint: allow(unordered-iter, reason = "min over (last_used, key) is iteration-order independent")
                .iter()
                .min_by_key(|(key, slot)| (slot.last_used, **key))
                .expect("non-empty table has a minimum")
                .0;
            let slot = self.entries.remove(&key).expect("key just found");
            self.resident_bytes -= slot.bytes;
            evicted += 1;
        }
        self.evictions += evicted;
        evicted
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct keys ever inserted — the eviction-independent
    /// (and therefore deterministic) session fact.
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Approximate resident payload bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Entries evicted since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_budget_specs() {
        assert_eq!(CacheBudget::parse("unlimited"), Ok(CacheBudget::UNLIMITED));
        assert_eq!(CacheBudget::parse("none"), Ok(CacheBudget::UNLIMITED));
        assert_eq!(CacheBudget::parse("0"), Ok(CacheBudget::limited(0)));
        assert_eq!(CacheBudget::parse("4096"), Ok(CacheBudget::limited(4096)));
        assert_eq!(
            CacheBudget::parse("64KiB"),
            Ok(CacheBudget::limited(64 << 10))
        );
        assert_eq!(
            CacheBudget::parse("64kb"),
            Ok(CacheBudget::limited(64 << 10))
        );
        assert_eq!(
            CacheBudget::parse("2MiB"),
            Ok(CacheBudget::limited(2 << 20))
        );
        assert_eq!(
            CacheBudget::parse("1GiB"),
            Ok(CacheBudget::limited(1 << 30))
        );
        assert_eq!(CacheBudget::parse("512B"), Ok(CacheBudget::limited(512)));
        assert!(CacheBudget::parse("lots").is_err());
        assert!(CacheBudget::parse("12TiB").is_err());
        assert!(CacheBudget::parse("99999999999999999999GiB").is_err());
        assert_eq!(CacheBudget::limited(64).to_string(), "64 B");
        assert_eq!(CacheBudget::UNLIMITED.to_string(), "unlimited");
    }

    #[test]
    fn shares_split_the_total() {
        let b = CacheBudget::limited(16 << 10);
        assert_eq!(b.synth_share(), Some(8 << 10));
        assert_eq!(b.starts_share(), Some(4 << 10));
        assert_eq!(b.alloc_share(), Some(2 << 10));
        assert_eq!(b.scratch_share(), Some(2 << 10));
        assert_eq!(CacheBudget::UNLIMITED.synth_share(), None);
        assert_eq!(CacheBudget::limited(0).synth_share(), Some(0));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut t = BudgetedTable::default();
        t.set_budget(Some(100));
        assert_eq!(t.insert(1, "a", 40), 0);
        assert_eq!(t.insert(2, "b", 40), 0);
        // Touch key 1 so key 2 is now the LRU entry.
        assert_eq!(t.get(1), Some(&"a"));
        assert_eq!(t.insert(3, "c", 40), 1);
        assert!(t.get(2).is_none(), "LRU entry was evicted");
        assert_eq!(t.get(1), Some(&"a"));
        assert_eq!(t.get(3), Some(&"c"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.seen_len(), 3);
        assert_eq!(t.resident_bytes(), 80);
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn budget_zero_caches_nothing_but_remembers_seen_keys() {
        let mut t = BudgetedTable::default();
        t.set_budget(Some(0));
        assert_eq!(t.insert(7, "x", 16), 1);
        assert_eq!(t.len(), 0);
        assert_eq!(t.resident_bytes(), 0);
        assert_eq!(t.seen_len(), 1);
        // Re-inserting the same key keeps the seen count stable.
        assert_eq!(t.insert(7, "x", 16), 1);
        assert_eq!(t.seen_len(), 1);
    }

    #[test]
    fn reinserting_a_key_replaces_its_bytes() {
        let mut t = BudgetedTable::default();
        assert_eq!(t.insert(1, "a", 30), 0);
        assert_eq!(t.insert(1, "b", 50), 0);
        assert_eq!(t.resident_bytes(), 50);
        assert_eq!(t.len(), 1);
        assert_eq!(t.seen_len(), 1);
        // Shrinking the budget evicts immediately.
        assert_eq!(t.set_budget(Some(10)), 1);
        assert_eq!(t.len(), 0);
        assert_eq!(t.evictions(), 1);
    }
}
