//! Memoization of synthesis reports keyed by a content fingerprint.
//!
//! A sweep re-synthesizes the same `(DFG, library, bounds, flow, model,
//! strategy)` point whenever grids overlap between runs, benchmarks share
//! structure, or a frontier is refined interactively. The [`SynthCache`]
//! makes every repeat near-free: reports are stored under a 64-bit
//! fingerprint of the *content* of all synthesis inputs — the flow's pass
//! ids and the strategy's [`fingerprint
//! token`](crate::Strategy::fingerprint_token), never enum
//! discriminants — so any structurally identical request, even from a
//! rebuilt [`Dfg`] value or an out-of-tree strategy, hits the cache.

use crate::engine::budget::{BudgetedTable, CacheBudget};
use crate::engine::fingerprint::Fingerprint;
use crate::engine::store_tier::{self, Provenance, StoreOutcome};
use crate::{
    Bounds, FlowSpec, RedundancyModel, Strategy, SynthReport, SynthRequest, SynthesisError,
};
use rchls_dfg::Dfg;
use rchls_reslib::Library;
use rchls_store::ResultStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The cache key: a content fingerprint of every input that can change a
/// synthesis result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Fingerprints one synthesis request for a strategy, keyed by the
    /// flow's pass ids and the strategy's fingerprint token.
    #[must_use]
    pub fn for_point(
        dfg: &Dfg,
        library: &Library,
        bounds: Bounds,
        flow: &FlowSpec,
        model: RedundancyModel,
        strategy_token: &str,
    ) -> CacheKey {
        let mut fp = Fingerprint::new();
        fp.update(dfg);
        fp.update(library);
        fp.update(&bounds);
        fp.update(flow);
        fp.update(&model);
        fp.update(strategy_token);
        CacheKey(fp.finish())
    }

    /// The raw 64-bit fingerprint.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Counters describing a cache's effectiveness so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran a fresh synthesis.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of requests served from the cache (`0.0` when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One memoized outcome, carrying the cheap-to-compare request facts
/// (`bounds`, the strategy token) so a 64-bit fingerprint collision
/// between two different requests is detected instead of silently
/// returning the wrong design. (The remaining inputs — DFG, library,
/// flow — vary far less across a sweep, so the pair covers virtually all
/// of the key diversity.)
#[derive(Debug, Clone)]
struct CacheEntry {
    bounds: Bounds,
    strategy: String,
    result: Option<SynthReport>,
}

impl CacheEntry {
    /// Approximate bytes this entry keeps resident — the size-accounting
    /// input for the cache's LRU budget.
    fn approx_bytes(&self) -> usize {
        size_of::<CacheEntry>()
            + self.strategy.capacity()
            + self.result.as_ref().map_or(0, SynthReport::approx_bytes)
    }
}

/// A thread-safe memo table of synthesis reports.
///
/// Stores `Option<SynthReport>` per key — `None` records an *infeasible*
/// point so repeated sweeps don't re-prove infeasibility either. The lock
/// is held only for lookups and inserts, never across a synthesis run, so
/// parallel workers proceed without serializing on the cache. (Two
/// workers may race to compute the same fresh key; both compute the same
/// deterministic result, and the second insert is a harmless overwrite.)
///
/// Cached reports keep the wall time of the run that populated the entry;
/// callers assembling deterministic artifacts scrub it (see
/// [`crate::Diagnostics::scrubbed`]).
///
/// Under a [`CacheBudget`], every layer this cache owns (the memo table
/// here, the two [`StartsCache`](crate::engine::StartsCache) tables, and
/// the scratch pool) evicts least-recently-used entries to stay inside
/// its share — see [`SynthCache::set_budget`]. Eviction never changes
/// outputs, only recompute cost.
#[derive(Debug, Default)]
pub struct SynthCache {
    entries: Mutex<BudgetedTable<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Session scratch arenas lent to every miss's synthesis run, so a
    /// sweep/batch over this cache allocates one arena per concurrent
    /// worker instead of per point.
    scratch: crate::scratch::ScratchPool,
    /// Session-interned uniform start pools (see
    /// [`StartsCache`](crate::engine::StartsCache)), shared by every
    /// refining flow this cache runs.
    starts: crate::engine::StartsCache,
    /// The optional on-disk second tier (see [`SynthCache::set_store`]):
    /// probed after a memory miss, written back after a fresh
    /// synthesis. Set once per session.
    store: OnceLock<Arc<ResultStore>>,
}

impl SynthCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> SynthCache {
        SynthCache::default()
    }

    /// Runs `strategy` at one synthesis point through the cache: returns
    /// the memoized report if the fingerprint is known, otherwise
    /// synthesizes, stores, and returns the result. Infeasibility maps to
    /// `None`.
    pub fn synthesize(
        &self,
        dfg: &Dfg,
        library: &Library,
        bounds: Bounds,
        flow: &FlowSpec,
        model: RedundancyModel,
        strategy: &dyn Strategy,
    ) -> Option<SynthReport> {
        self.synthesize_with_workload(dfg, library, bounds, flow, model, strategy, None)
    }

    /// [`SynthCache::synthesize`] with the request's canonical workload
    /// spec, when the caller knows it. The spec rides into on-disk
    /// store entries as re-synthesis provenance (`rchls store verify`);
    /// it never affects the cache key or the result.
    #[allow(clippy::too_many_arguments)]
    pub fn synthesize_with_workload(
        &self,
        dfg: &Dfg,
        library: &Library,
        bounds: Bounds,
        flow: &FlowSpec,
        model: RedundancyModel,
        strategy: &dyn Strategy,
        workload: Option<&str>,
    ) -> Option<SynthReport> {
        let token = strategy.fingerprint_token();
        let key = CacheKey::for_point(dfg, library, bounds, flow, model, &token);
        let provenance = workload.map(|spec| Provenance {
            workload: spec.to_owned(),
            flow: flow.clone(),
            model,
        });
        self.get_or_compute_with(key, bounds, &token, provenance.as_ref(), || {
            strategy.run(
                &SynthRequest::new(dfg, library, bounds)
                    .with_flow(flow.clone())
                    .with_redundancy(model)
                    .with_scratch_pool(&self.scratch)
                    .with_starts_cache(&self.starts),
            )
        })
    }

    /// Attaches the on-disk result store as the second cache tier. The
    /// first store attached to a session wins; later calls are ignored
    /// (tiering is a session-construction decision, not a runtime
    /// toggle).
    pub fn set_store(&self, store: Arc<ResultStore>) {
        let _ = self.store.set(store);
    }

    /// The attached on-disk store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.get()
    }

    /// The session scratch pool misses synthesize on.
    #[must_use]
    pub fn scratch_pool(&self) -> &crate::scratch::ScratchPool {
        &self.scratch
    }

    /// The session-interned uniform start pools misses draw from.
    #[must_use]
    pub fn starts_cache(&self) -> &crate::engine::StartsCache {
        &self.starts
    }

    /// Applies a session-wide cache budget: the memo table takes the
    /// synth share, the starts/alloc tables and the scratch pool take
    /// theirs. Layers over their new share evict immediately.
    pub fn set_budget(&self, budget: CacheBudget) {
        let evicted = crate::sync::lock_unpoisoned(&self.entries).set_budget(budget.synth_share());
        crate::obs::synth_cache_evictions().add(evicted);
        self.starts
            .set_budget(budget.starts_share(), budget.alloc_share());
        self.scratch.set_budget(budget.scratch_share());
    }

    /// Looks up `key`, computing and storing with `compute` on a miss.
    ///
    /// `bounds` and `strategy_token` double as a collision check: an
    /// entry found under `key` but recorded for a different request is a
    /// fingerprint collision, and the request is computed fresh (and not
    /// cached) rather than answered with the wrong design.
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        bounds: Bounds,
        strategy_token: &str,
        compute: impl FnOnce() -> Result<SynthReport, SynthesisError>,
    ) -> Option<SynthReport> {
        self.get_or_compute_with(key, bounds, strategy_token, None, compute)
    }

    /// [`SynthCache::get_or_compute`] with optional store provenance
    /// for the write-back path (see
    /// [`SynthCache::synthesize_with_workload`]).
    fn get_or_compute_with(
        &self,
        key: CacheKey,
        bounds: Bounds,
        strategy_token: &str,
        provenance: Option<&Provenance>,
        compute: impl FnOnce() -> Result<SynthReport, SynthesisError>,
    ) -> Option<SynthReport> {
        let mut collided = false;
        if let Some(entry) = crate::sync::lock_unpoisoned(&self.entries).get(key.0) {
            if entry.bounds == bounds && entry.strategy == strategy_token {
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::obs::synth_cache_hits().incr();
                return entry.result.clone();
            }
            collided = true;
        }
        // Second tier: the on-disk store. Skipped when the memory entry
        // collided — the store is keyed by the same fingerprint, so its
        // entry is just as suspect for this request.
        let mut probe_store = !collided;
        if probe_store {
            if let Some(store) = self.store.get() {
                match store_tier::load(store, key, bounds, strategy_token) {
                    StoreOutcome::Hit(result) => {
                        // Promote into the memory tier so `seen_points`
                        // and later lookups match a cold-computed
                        // session, then answer.
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.insert_entry(key, bounds, strategy_token, result.clone());
                        return result;
                    }
                    StoreOutcome::Collision => {
                        collided = true;
                        probe_store = false;
                    }
                    StoreOutcome::Miss => {}
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::obs::synth_cache_misses().incr();
        let result = compute().ok();
        if !collided {
            self.insert_entry(key, bounds, strategy_token, result.clone());
            if probe_store {
                if let Some(store) = self.store.get() {
                    store_tier::save(
                        store,
                        key,
                        bounds,
                        strategy_token,
                        result.as_ref(),
                        provenance,
                    );
                }
            }
        }
        result
    }

    /// Inserts one memoized outcome, with the eviction and residency
    /// accounting every insert path shares.
    fn insert_entry(
        &self,
        key: CacheKey,
        bounds: Bounds,
        strategy_token: &str,
        result: Option<SynthReport>,
    ) {
        crate::obs::synth_cache_inserts().incr();
        let entry = CacheEntry {
            bounds,
            strategy: strategy_token.to_owned(),
            result,
        };
        let bytes = entry.approx_bytes();
        let (evicted, resident) = {
            let mut table = crate::sync::lock_unpoisoned(&self.entries);
            let evicted = table.insert(key.0, entry, bytes);
            (evicted, table.resident_bytes())
        };
        crate::obs::synth_cache_evictions().add(evicted);
        crate::obs::synth_cache_resident_bytes().record(resident as u64);
    }

    /// Hit/miss counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of *resident* memoized points (feasible and infeasible).
    /// Under a budget this can shrink; for the deterministic
    /// ever-memoized count use [`SynthCache::seen_points`].
    #[must_use]
    pub fn len(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).len()
    }

    /// `true` when nothing is currently memoized.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct synthesis points ever memoized — independent
    /// of eviction (and worker count), so deterministic documents report
    /// this rather than [`SynthCache::len`].
    #[must_use]
    pub fn seen_points(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).seen_len()
    }

    /// Approximate resident bytes of the memo table.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        crate::sync::lock_unpoisoned(&self.entries).resident_bytes()
    }

    /// Entries evicted from the memo table since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        crate::sync::lock_unpoisoned(&self.entries).evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{flow, StrategyKind};
    use rchls_dfg::{DfgBuilder, OpKind};

    fn tiny() -> Dfg {
        DfgBuilder::new("tiny")
            .ops(&["a", "b"], OpKind::Add)
            .dep("a", "b")
            .build()
            .unwrap()
    }

    fn ours() -> Arc<dyn Strategy> {
        flow::strategy("ours").unwrap()
    }

    #[test]
    fn identical_requests_hit() {
        let dfg = tiny();
        let lib = Library::table1();
        let cache = SynthCache::new();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let first = cache.synthesize(&dfg, &lib, Bounds::new(6, 4), &flow_spec, model, &*ours());
        let second = cache.synthesize(&dfg, &lib, Bounds::new(6, 4), &flow_spec, model, &*ours());
        assert_eq!(first, second);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn structurally_equal_graphs_share_entries() {
        // A rebuilt graph with the same content fingerprints identically.
        let lib = Library::table1();
        let cache = SynthCache::new();
        let combined = flow::strategy("combined").unwrap();
        for _ in 0..2 {
            let dfg = tiny();
            cache.synthesize(
                &dfg,
                &lib,
                Bounds::new(6, 4),
                &FlowSpec::default(),
                RedundancyModel::default(),
                &*combined,
            );
        }
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn different_inputs_do_not_collide() {
        let dfg = tiny();
        let lib = Library::table1();
        let cache = SynthCache::new();
        let model = RedundancyModel::default();
        let flow_spec = FlowSpec::default();
        for kind in StrategyKind::TABLE2 {
            cache.synthesize(
                &dfg,
                &lib,
                Bounds::new(6, 4),
                &flow_spec,
                model,
                &*kind.strategy(),
            );
        }
        cache.synthesize(&dfg, &lib, Bounds::new(7, 4), &flow_spec, model, &*ours());
        cache.synthesize(&dfg, &lib, Bounds::new(6, 5), &flow_spec, model, &*ours());
        // A different pass id is a different point too.
        cache.synthesize(
            &dfg,
            &lib,
            Bounds::new(6, 4),
            &FlowSpec::default().with_victim("min-reliability-loss"),
            model,
            &*ours(),
        );
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 6 });
    }

    #[test]
    fn infeasibility_is_cached_too() {
        let dfg = tiny();
        let lib = Library::table1();
        let cache = SynthCache::new();
        for _ in 0..2 {
            let out = cache.synthesize(
                &dfg,
                &lib,
                // Latency 1 is impossible for two dependent ops.
                Bounds::new(1, 4),
                &FlowSpec::default(),
                RedundancyModel::default(),
                &*ours(),
            );
            assert!(out.is_none());
        }
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn fingerprint_collisions_are_detected_not_served() {
        let dfg = tiny();
        let lib = Library::table1();
        let cache = SynthCache::new();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        // Slack bounds settle on the reliable slow adders (latency 4);
        // the tight-latency request must use fast adders (latency 2).
        let wide = Bounds::new(6, 4);
        let tight = Bounds::new(2, 6);
        let key = CacheKey::for_point(&dfg, &lib, wide, &flow_spec, model, "ours");
        let run =
            |bounds: Bounds| StrategyKind::Ours.run_report(&dfg, &lib, bounds, &flow_spec, model);
        let first = cache.get_or_compute(key, wide, "ours", || run(wide));
        // The same key arriving with a different declared request is a
        // collision: it must compute fresh, never serve the wide result.
        let second = cache.get_or_compute(key, tight, "ours", || run(tight));
        assert_ne!(first, second);
        assert_eq!(second.as_ref().map(|r| r.design.latency), Some(2));
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.len(), 1, "a collided request is not cached");
        // The original entry still answers its own request.
        let again = cache.get_or_compute(key, wide, "ours", || {
            unreachable!("must be served from the cache")
        });
        assert_eq!(again, first);
        // A differing strategy token on the same key is a collision too.
        let other = cache.get_or_compute(key, wide, "pipelined@ii=2", || run(wide));
        assert_eq!(cache.stats().misses, 3);
        assert!(other.is_some());
    }

    #[test]
    fn budget_zero_evicts_everything_without_changing_outputs() {
        let dfg = tiny();
        let lib = Library::table1();
        let unlimited = SynthCache::new();
        let zero = SynthCache::new();
        zero.set_budget(CacheBudget::limited(0));
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let bounds = Bounds::new(6, 4);
        for _ in 0..2 {
            let cached = unlimited
                .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
                .unwrap();
            let evicted = zero
                .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
                .unwrap();
            // Only wall times may differ between a cache hit and a
            // recompute-after-eviction.
            assert_eq!(cached.design, evicted.design);
            assert_eq!(
                cached.diagnostics.scrubbed(),
                evicted.diagnostics.scrubbed()
            );
        }
        // The unlimited session memoized; the budget-0 session kept
        // nothing resident but still counted the distinct point.
        assert_eq!(unlimited.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(zero.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(zero.len(), 0);
        assert_eq!(zero.resident_bytes(), 0);
        assert_eq!(zero.seen_points(), 1);
        assert_eq!(zero.evictions(), 2);
        assert!(unlimited.resident_bytes() > 0);
        assert_eq!(unlimited.evictions(), 0);
        assert_eq!(unlimited.seen_points(), 1);
    }

    #[test]
    fn a_poisoned_lock_does_not_wedge_the_cache() {
        let dfg = tiny();
        let lib = Library::table1();
        let cache = SynthCache::new();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let first = cache.synthesize(&dfg, &lib, Bounds::new(6, 4), &flow_spec, model, &*ours());
        // Panic while holding the memo-table lock, as a panicking request
        // in a shared session would.
        let poisoner = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = cache.entries.lock().unwrap();
                    panic!("poison the cache lock");
                })
                .join()
        });
        assert!(poisoner.is_err());
        assert!(cache.entries.is_poisoned());
        // The session keeps serving: the memoized entry still answers.
        let second = cache.synthesize(&dfg, &lib, Bounds::new(6, 4), &flow_spec, model, &*ours());
        assert_eq!(first, second);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn hit_rate_is_reported() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    /// A fresh store root under the system temp dir, unique per test.
    fn store_at(tag: &str) -> Arc<ResultStore> {
        let root =
            std::env::temp_dir().join(format!("rchls-core-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Arc::new(ResultStore::open(root).expect("temp store opens"))
    }

    /// A session cache tiered over an existing store root.
    fn session_over(store: &Arc<ResultStore>) -> SynthCache {
        let cache = SynthCache::new();
        cache.set_store(Arc::clone(store));
        cache
    }

    #[test]
    fn store_tier_round_trips_across_sessions() {
        let store = store_at("roundtrip");
        let dfg = tiny();
        let lib = Library::table1();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let bounds = Bounds::new(6, 4);

        let cold = session_over(&store);
        let first = cold
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .unwrap();
        assert_eq!(cold.stats(), CacheStats { hits: 0, misses: 1 });

        // A brand-new session over the same root answers from disk:
        // same design, same scrubbed diagnostics, no synthesis run.
        let warm = session_over(&store);
        let second = warm
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .unwrap();
        assert_eq!(warm.stats(), CacheStats { hits: 1, misses: 0 });
        assert_eq!(first.design, second.design);
        assert_eq!(first.diagnostics.scrubbed(), second.diagnostics);
        // The store keeps wall-time-scrubbed diagnostics, so store-served
        // reports are deterministic as-is.
        assert_eq!(second.diagnostics.wall_time_micros, 0);
        // The hit was promoted into the memory tier: the cumulative
        // point count matches a cold-computed session, and the next
        // lookup never touches disk.
        assert_eq!(warm.seen_points(), 1);
        let third = warm
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .unwrap();
        assert_eq!(third, second);
        assert_eq!(warm.stats(), CacheStats { hits: 2, misses: 0 });
    }

    #[test]
    fn store_tier_records_infeasibility_too() {
        let store = store_at("infeasible");
        let dfg = tiny();
        let lib = Library::table1();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        // Latency 1 is impossible for two dependent ops.
        let bounds = Bounds::new(1, 4);
        let cold = session_over(&store);
        assert!(cold
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .is_none());
        let warm = session_over(&store);
        assert!(warm
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .is_none());
        assert_eq!(warm.stats(), CacheStats { hits: 1, misses: 0 });
    }

    #[test]
    fn corrupt_store_entries_are_recomputed_never_served() {
        let store = store_at("corrupt");
        let dfg = tiny();
        let lib = Library::table1();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let bounds = Bounds::new(6, 4);
        let cold = session_over(&store);
        let first = cold
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .unwrap();

        // Truncate every live entry file behind the store's back.
        let mut corrupted = 0;
        for key in store.keys() {
            let rchls_store::Lookup::Hit(_) = store.load(key) else {
                panic!("cold entries load");
            };
            corrupted += 1;
        }
        assert_eq!(corrupted, 1);
        fn truncate_all(dir: &std::path::Path) {
            for entry in std::fs::read_dir(dir).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    truncate_all(&path);
                } else {
                    let text = std::fs::read_to_string(&path).unwrap();
                    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
                }
            }
        }
        truncate_all(&store.root().join("objects"));

        // The warm session quarantines, recomputes, and matches.
        let warm = session_over(&store);
        let second = warm
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .unwrap();
        assert_eq!(warm.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(first.design, second.design);
        assert_eq!(store.stats().quarantined, 1);
        // The recompute wrote a clean entry back.
        let healed = session_over(&store);
        let third = healed
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .unwrap();
        assert_eq!(healed.stats(), CacheStats { hits: 1, misses: 0 });
        assert_eq!(second.design, third.design);
    }

    #[test]
    fn undecodable_store_payloads_are_quarantined() {
        let store = store_at("undecodable");
        let dfg = tiny();
        let lib = Library::table1();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let bounds = Bounds::new(6, 4);
        let key = CacheKey::for_point(&dfg, &lib, bounds, &flow_spec, model, "ours");
        // A valid envelope whose payload is not a StoredEntry — what an
        // engine schema change would leave behind.
        store.save(key.raw(), r#"{"era": "older-engine"}"#).unwrap();
        let cache = session_over(&store);
        assert!(cache
            .synthesize(&dfg, &lib, bounds, &flow_spec, model, &*ours())
            .is_some());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(store.stats().quarantined, 1);
    }

    #[test]
    fn store_collisions_compute_fresh_and_keep_the_entry() {
        let store = store_at("collision");
        let dfg = tiny();
        let lib = Library::table1();
        let flow_spec = FlowSpec::default();
        let model = RedundancyModel::default();
        let wide = Bounds::new(6, 4);
        let tight = Bounds::new(2, 6);
        let key = CacheKey::for_point(&dfg, &lib, wide, &flow_spec, model, "ours");
        let run =
            |bounds: Bounds| StrategyKind::Ours.run_report(&dfg, &lib, bounds, &flow_spec, model);

        let first = session_over(&store).get_or_compute(key, wide, "ours", || run(wide));
        // A different request arriving under the same fingerprint in a
        // fresh session collides against the *disk* entry: computed
        // fresh, not written back.
        let colliding = session_over(&store);
        let second = colliding.get_or_compute(key, tight, "ours", || run(tight));
        assert_ne!(first, second);
        assert_eq!(second.as_ref().map(|r| r.design.latency), Some(2));
        assert_eq!(colliding.stats(), CacheStats { hits: 0, misses: 1 });
        // The original entry survived and still answers its own request.
        let again = session_over(&store).get_or_compute(key, wide, "ours", || {
            unreachable!("must be served from the store")
        });
        assert_eq!(
            again.as_ref().map(|r| r.design.clone()),
            first.as_ref().map(|r| r.design.clone())
        );
    }
}
