//! Monte-Carlo validation of the analytic reliability model.
//!
//! The paper's design reliability is computed analytically (the Section-5
//! serial product, with per-instance NMR). This module *simulates* the
//! failure process — every replica of every operation independently
//! suffers a soft error with its version's failure probability, module
//! outputs follow the duplex/majority voting semantics, and the design
//! succeeds iff every operation's module delivers a correct result —
//! giving an empirical estimate to cross-check the closed forms.

use crate::design::Design;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rchls_dfg::Dfg;
use rchls_reslib::Library;

/// Empirical design reliability from `trials` independent mission
/// simulations (deterministic per `seed`).
///
/// Sampling semantics per operation: its instance's replication count `r`
/// determines module success —
/// `r = 1`: the single execution must succeed;
/// `r = 2`: duplex with perfect detect-and-rollback — at least one replica
/// must succeed;
/// odd `r >= 3`: strict majority of replicas must succeed;
/// even `r >= 4`: majority over `r - 1` replicas (the conservative scoring
/// used by the analytic model).
///
/// # Panics
///
/// Panics if `trials == 0`.
///
/// # Examples
///
/// ```
/// use rchls_core::{monte_carlo_reliability, Bounds, Synthesizer};
/// use rchls_reslib::Library;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = rchls_workloads::diffeq();
/// let library = Library::table1();
/// let design = Synthesizer::new(&dfg, &library).synthesize(Bounds::new(6, 11))?;
/// let empirical = monte_carlo_reliability(&design, &dfg, &library, 20_000, 42);
/// assert!((empirical - design.reliability.value()).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn monte_carlo_reliability(
    design: &Design,
    dfg: &Dfg,
    library: &Library,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "at least one trial is required");
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-node success probability of one replica, and replica count.
    let per_node: Vec<(f64, u32)> = dfg
        .node_ids()
        .map(|n| {
            let p = library
                .version(design.assignment.version(n))
                .reliability()
                .value();
            let r = design.replication[design.binding.instance_of(n).index()];
            (p, r)
        })
        .collect();
    let mut successes = 0usize;
    'trial: for _ in 0..trials {
        for &(p, r) in &per_node {
            let ok = match r {
                0 | 1 => rng.gen_bool(p),
                2 => rng.gen_bool(p) || rng.gen_bool(p),
                r => {
                    let voters = if r % 2 == 1 { r } else { r - 1 };
                    let good = (0..voters).filter(|_| rng.gen_bool(p)).count() as u32;
                    good > voters / 2
                }
            };
            if !ok {
                continue 'trial;
            }
        }
        successes += 1;
    }
    successes as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Bounds;
    use crate::redundancy::add_redundancy;
    use crate::synth::Synthesizer;
    use rchls_dfg::{DfgBuilder, OpKind};

    #[test]
    fn empirical_matches_analytic_without_redundancy() {
        let g = rchls_workloads::fir16();
        let lib = Library::table1();
        let d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(13, 8))
            .unwrap();
        let emp = monte_carlo_reliability(&d, &g, &lib, 50_000, 7);
        assert!(
            (emp - d.reliability.value()).abs() < 0.01,
            "empirical {emp} vs analytic {}",
            d.reliability
        );
    }

    #[test]
    fn empirical_matches_analytic_with_duplex_redundancy() {
        let g = DfgBuilder::new("chain")
            .ops(&["a", "b", "c"], OpKind::Add)
            .dep("a", "b")
            .dep("b", "c")
            .build()
            .unwrap();
        let lib = Library::table1();
        let mut d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(8, 2))
            .unwrap();
        add_redundancy(&mut d, &g, &lib, 6);
        assert!(d.redundant_instance_count() >= 1);
        let emp = monte_carlo_reliability(&d, &g, &lib, 50_000, 11);
        assert!(
            (emp - d.reliability.value()).abs() < 0.01,
            "empirical {emp} vs analytic {}",
            d.reliability
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = rchls_workloads::diffeq();
        let lib = Library::table1();
        let d = Synthesizer::new(&g, &lib)
            .synthesize(Bounds::new(6, 11))
            .unwrap();
        let a = monte_carlo_reliability(&d, &g, &lib, 5_000, 3);
        let b = monte_carlo_reliability(&d, &g, &lib, 5_000, 3);
        assert_eq!(a, b);
    }
}
