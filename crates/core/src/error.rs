//! Synthesis errors.

use rchls_reslib::LibraryError;
use rchls_sched::ScheduleError;
use std::error::Error;
use std::fmt;

/// An error produced by a synthesis strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No design exists within the given bounds and library (the paper's
    /// "return no solution" outcomes in Figure 6).
    NoSolution {
        /// Which bound could not be met, and why.
        reason: String,
    },
    /// The library is missing versions for a class the graph uses.
    Library(LibraryError),
    /// A scheduling step failed (cycle in the graph, internal bug).
    Schedule(ScheduleError),
    /// A flow spec named a pass id the registry doesn't know.
    UnknownPass {
        /// Which slot failed to resolve (`"scheduler"`, `"binder"`, ...).
        kind: String,
        /// The unresolved id.
        id: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoSolution { reason } => {
                write!(f, "no design meets the bounds: {reason}")
            }
            SynthesisError::Library(e) => write!(f, "library error: {e}"),
            SynthesisError::Schedule(e) => write!(f, "scheduling error: {e}"),
            SynthesisError::UnknownPass { kind, id } => {
                write!(
                    f,
                    "unknown {kind} {id:?} (see `rchls flows` for registered ids)"
                )
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Library(e) => Some(e),
            SynthesisError::Schedule(e) => Some(e),
            SynthesisError::NoSolution { .. } | SynthesisError::UnknownPass { .. } => None,
        }
    }
}

impl From<LibraryError> for SynthesisError {
    fn from(e: LibraryError) -> SynthesisError {
        SynthesisError::Library(e)
    }
}

impl From<ScheduleError> for SynthesisError {
    fn from(e: ScheduleError) -> SynthesisError {
        SynthesisError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SynthesisError::NoSolution {
            reason: "latency 5 < critical path 7".into(),
        };
        assert!(e.to_string().contains("critical path"));
        assert!(Error::source(&e).is_none());
        let s: SynthesisError = ScheduleError::NoInstances.into();
        assert!(Error::source(&s).is_some());
    }
}
