//! Process-global deterministic fault injection (`rchls-chaos`).
//!
//! The same registry discipline as the telemetry sink plane: one
//! process-wide slot, armed explicitly, with a relaxed-atomic fast path
//! so an unarmed process pays exactly one `AtomicBool` load per guarded
//! site — cheap enough that injection points live permanently in
//! production code paths (store I/O, serve connections, engine spills)
//! without moving the perf gate.
//!
//! Call sites declare named points with [`faultpoint!`]:
//!
//! ```
//! # fn fsync() -> std::io::Result<()> { Ok(()) }
//! fn guarded_fsync() -> std::io::Result<()> {
//!     if rchls_chaos::faultpoint!("store.write.fsync").is_some() {
//!         return Err(rchls_chaos::injected_io_error("store.write.fsync"));
//!     }
//!     fsync()
//! }
//! ```
//!
//! A site only needs to handle the [`Fault`] variants its catalog entry
//! advertises ([`plan::CATALOG`]); `panic` and `delay` actions are
//! performed *inside* [`evaluate`], so no call site carries
//! panic/sleep plumbing. Faults fire per the armed [`FaultPlan`]'s
//! deterministic triggers — seeded counters and hit ranges, never wall
//! clock — and [`disarm`] returns a [`ChaosReport`] of what actually
//! fired, which the `rchls chaos run` harness embeds in its report.

pub mod plan;

mod obs;

pub use plan::{
    point_info, Action, ActionKind, FaultPlan, FaultRule, PlanError, PointInfo, Trigger, CATALOG,
    FAULT_PLAN_SCHEMA_VERSION,
};

use serde::Value;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Duration;

/// Mirrors "is any plan armed" for the [`faultpoint!`] fast path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// True when a fault plan is armed. One relaxed atomic load — the
/// entire cost of an injection point in a normal process.
#[inline]
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// What a guarded call site must act out for this hit. `panic` and
/// `delay` never reach call sites (see [`evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the guarded operation with an injected error.
    Error,
    /// Proceed, but leave the operation's effect truncated/corrupted.
    Torn,
    /// Drop the connection mid-operation.
    Disconnect,
}

/// The injection point's guard. Expands to a plain `Option<Fault>`
/// expression: `None` at one relaxed atomic load when nothing is
/// armed, otherwise the armed plan's verdict for this hit.
#[macro_export]
macro_rules! faultpoint {
    ($point:expr) => {
        if $crate::armed() {
            $crate::evaluate($point)
        } else {
            None
        }
    };
}

/// The canonical error value for a [`Fault::Error`] at an I/O site.
#[must_use]
pub fn injected_io_error(point: &str) -> std::io::Error {
    std::io::Error::other(format!("chaos: injected fault at {point}"))
}

/// Arming failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosError {
    /// A plan is already armed; disarm it first. One plan at a time
    /// keeps reports attributable.
    AlreadyArmed,
    /// The plan failed validation (also reachable via hand-built plans
    /// that skipped [`FaultPlan::parse`]).
    Invalid(PlanError),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::AlreadyArmed => {
                write!(f, "a fault plan is already armed (disarm it first)")
            }
            ChaosError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

struct RuleState {
    action: Action,
    trigger: Trigger,
    fired: AtomicU64,
}

struct PointState {
    name: String,
    hits: AtomicU64,
    rules: Vec<RuleState>,
}

struct ArmedPlan {
    seed: u64,
    points: Vec<PointState>,
}

fn slot() -> &'static RwLock<Option<Arc<ArmedPlan>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<ArmedPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Validates `plan` against the catalog and arms it process-wide.
///
/// # Errors
///
/// [`ChaosError::AlreadyArmed`] when a plan is armed (the slot is
/// unchanged), or [`ChaosError::Invalid`] when a rule names an unknown
/// point or an action its point does not support.
pub fn arm(plan: FaultPlan) -> Result<(), ChaosError> {
    for rule in &plan.rules {
        let info = point_info(&rule.point).ok_or_else(|| {
            ChaosError::Invalid(PlanError(format!("unknown point {:?}", rule.point)))
        })?;
        if !info.actions.contains(&rule.action.kind()) {
            return Err(ChaosError::Invalid(PlanError(format!(
                "point {:?} does not support action {:?}",
                rule.point,
                rule.action.kind().as_str()
            ))));
        }
    }
    // Group rules by point, preserving plan order within each point
    // (first firing rule wins a hit).
    let mut points: Vec<PointState> = Vec::new();
    for rule in plan.rules {
        let state = RuleState {
            action: rule.action,
            trigger: rule.trigger,
            fired: AtomicU64::new(0),
        };
        match points.iter_mut().find(|p| p.name == rule.point) {
            Some(p) => p.rules.push(state),
            None => points.push(PointState {
                name: rule.point,
                hits: AtomicU64::new(0),
                rules: vec![state],
            }),
        }
    }
    let mut guard = slot().write().unwrap_or_else(PoisonError::into_inner);
    if guard.is_some() {
        return Err(ChaosError::AlreadyArmed);
    }
    *guard = Some(Arc::new(ArmedPlan {
        seed: plan.seed,
        points,
    }));
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Disarms the current plan, returning its final [`ChaosReport`]
/// (`None` when nothing was armed). Evaluations racing the disarm may
/// still act on the old plan through their cloned handle; new
/// evaluations see the fast path go cold immediately.
pub fn disarm() -> Option<ChaosReport> {
    let plan = {
        let mut guard = slot().write().unwrap_or_else(PoisonError::into_inner);
        ARMED.store(false, Ordering::Relaxed);
        guard.take()?
    };
    Some(snapshot(&plan))
}

/// Snapshots the armed plan's counters without disarming (`None` when
/// nothing is armed).
#[must_use]
pub fn report() -> Option<ChaosReport> {
    let plan = slot()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    Some(snapshot(&plan))
}

/// Counts one hit at `point` against the armed plan and returns the
/// fault the call site must act out, if any.
///
/// Rules for the point are checked in plan order; the first whose
/// trigger fires wins the hit. `panic` rules panic here (with a
/// recognizable `chaos: injected panic` message) and `delay` rules
/// sleep here, so call sites only ever see [`Fault`] variants.
///
/// Prefer [`faultpoint!`], which skips this entirely when unarmed.
///
/// # Panics
///
/// By design, when a `panic` rule fires.
#[must_use]
pub fn evaluate(point: &str) -> Option<Fault> {
    let plan = slot()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    let state = plan.points.iter().find(|p| p.name == point)?;
    let hit = state.hits.fetch_add(1, Ordering::Relaxed) + 1;
    obs::evaluations().incr();
    for rule in &state.rules {
        if trigger_fires(&rule.trigger, hit, plan.seed, point) {
            rule.fired.fetch_add(1, Ordering::Relaxed);
            obs::injected().incr();
            match rule.action {
                Action::Error => return Some(Fault::Error),
                Action::Torn => return Some(Fault::Torn),
                Action::Disconnect => return Some(Fault::Disconnect),
                Action::Panic => panic!("chaos: injected panic at {point} (hit {hit})"),
                Action::Delay { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    return None;
                }
            }
        }
    }
    None
}

fn trigger_fires(trigger: &Trigger, hit: u64, seed: u64, point: &str) -> bool {
    match trigger {
        Trigger::Always => true,
        Trigger::Hits(hits) => hits.contains(&hit),
        Trigger::Range { from, to } => (*from..=*to).contains(&hit),
        Trigger::Every { n, offset } => hit > *offset && (hit - offset).is_multiple_of(*n),
        Trigger::OneIn { n } => one_in_hash(seed, point, hit).is_multiple_of(*n),
    }
}

/// FNV-1a over `(seed, point, hit)`: deterministic, seed-sensitive,
/// and independent across points and hits.
fn one_in_hash(seed: u64, point: &str, hit: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
    let h = fnv(OFFSET, &seed.to_le_bytes());
    let h = fnv(h, point.as_bytes());
    fnv(h, &hit.to_le_bytes())
}

/// What an armed plan did: per point, the hit count and per-rule fire
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The plan seed.
    pub seed: u64,
    /// Per-point accounting, in plan order.
    pub points: Vec<PointReport>,
}

/// One point's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointReport {
    /// The injection-point name.
    pub point: String,
    /// Times the point was evaluated under this plan.
    pub hits: u64,
    /// Per-rule accounting, in plan order.
    pub rules: Vec<RuleReport>,
}

/// One rule's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleReport {
    /// The action's plan-file spelling.
    pub action: String,
    /// The trigger, rendered (see [`Trigger::render`]).
    pub trigger: String,
    /// Times this rule fired.
    pub fired: u64,
}

impl ChaosReport {
    /// Renders the report as a JSON value for embedding in harness
    /// reports.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|p| {
                let rules = p
                    .rules
                    .iter()
                    .map(|r| {
                        Value::Map(vec![
                            (key("action"), Value::Str(r.action.clone())),
                            (key("trigger"), Value::Str(r.trigger.clone())),
                            (key("fired"), Value::UInt(r.fired)),
                        ])
                    })
                    .collect();
                Value::Map(vec![
                    (key("point"), Value::Str(p.point.clone())),
                    (key("hits"), Value::UInt(p.hits)),
                    (key("rules"), Value::Seq(rules)),
                ])
            })
            .collect();
        Value::Map(vec![
            (key("seed"), Value::UInt(self.seed)),
            (key("points"), Value::Seq(points)),
        ])
    }
}

fn key(k: &str) -> Value {
    Value::Str(k.to_owned())
}

fn snapshot(plan: &ArmedPlan) -> ChaosReport {
    ChaosReport {
        seed: plan.seed,
        points: plan
            .points
            .iter()
            .map(|p| PointReport {
                point: p.name.clone(),
                hits: p.hits.load(Ordering::Relaxed),
                rules: p
                    .rules
                    .iter()
                    .map(|r| RuleReport {
                        action: r.action.kind().as_str().to_owned(),
                        trigger: r.trigger.render(),
                        fired: r.fired.load(Ordering::Relaxed),
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The fault plane is process-global; tests that arm it must not
    /// overlap. (Poisoning recovered so one failed test doesn't cascade.)
    fn arm_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn plan(text: &str) -> FaultPlan {
        FaultPlan::parse(text).expect("test plan parses")
    }

    #[test]
    fn unarmed_points_are_inert() {
        let _guard = arm_lock();
        assert!(!armed());
        assert_eq!(faultpoint!("store.write.fsync"), None);
        // Even a direct evaluate (skipping the fast path) is a no-op.
        assert_eq!(evaluate("store.write.fsync"), None);
        assert!(report().is_none());
        assert!(disarm().is_none());
    }

    #[test]
    fn plans_parse_validate_and_reject_typos() {
        let p = plan(
            r#"{"schema_version": 1, "seed": 7, "faults": [
                {"point": "store.write.fsync", "action": "error", "hits": [1, 3]},
                {"point": "serve.conn.read", "action": "delay", "ms": 5, "every": 2, "offset": 1},
                {"point": "store.read", "action": "torn", "one_in": 3},
                {"point": "serve.worker.exec", "action": "panic", "range": [2, 4]},
                {"point": "serve.conn.write", "action": "disconnect", "always": true}
            ]}"#,
        );
        assert_eq!(p.seed, 7);
        assert_eq!(p.rules.len(), 5);
        assert_eq!(p.rules[0].trigger, Trigger::Hits(vec![1, 3]));
        assert_eq!(p.rules[1].action, Action::Delay { ms: 5 });
        assert_eq!(p.rules[1].trigger, Trigger::Every { n: 2, offset: 1 });
        assert_eq!(p.rules[2].trigger, Trigger::OneIn { n: 3 });
        assert_eq!(p.rules[3].trigger, Trigger::Range { from: 2, to: 4 });
        assert_eq!(p.rules[4].trigger, Trigger::Always);

        let fail = |text: &str, needle: &str| {
            let err = FaultPlan::parse(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        fail("[]", "object");
        fail(r#"{"seed": 1, "faults": []}"#, "schema_version");
        fail(r#"{"schema_version": 2, "faults": []}"#, "schema_version 2");
        fail(r#"{"schema_version": 1}"#, "faults");
        fail(r#"{"schema_version": 1, "faults": [], "sede": 1}"#, "sede");
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "nope", "action": "error"}]}"#,
            "unknown point",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "panic"}]}"#,
            "does not support",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "torn", "hitz": [1]}]}"#,
            "hitz",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "torn", "hits": [1], "one_in": 2}]}"#,
            "at most one trigger",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "torn", "hits": [0]}]}"#,
            "1-based",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "torn", "range": [3, 2]}]}"#,
            "from <= to",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "torn", "offset": 2}]}"#,
            "offset",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "store.read", "action": "error", "ms": 4}]}"#,
            "delay",
        );
        fail(
            r#"{"schema_version": 1, "faults": [{"point": "serve.conn.read", "action": "delay"}]}"#,
            "ms",
        );
    }

    #[test]
    fn triggers_fire_deterministically() {
        let fires = |t: &Trigger, seed: u64| -> Vec<u64> {
            (1..=12)
                .filter(|&h| trigger_fires(t, h, seed, "store.read"))
                .collect()
        };
        assert_eq!(fires(&Trigger::Hits(vec![2, 5]), 0), vec![2, 5]);
        assert_eq!(fires(&Trigger::Range { from: 3, to: 5 }, 0), vec![3, 4, 5]);
        assert_eq!(
            fires(&Trigger::Every { n: 4, offset: 0 }, 0),
            vec![4, 8, 12]
        );
        assert_eq!(
            fires(&Trigger::Every { n: 4, offset: 1 }, 0),
            vec![5, 9] // cadence starts after the first `offset` hits
        );
        assert_eq!(fires(&Trigger::Always, 0), (1..=12).collect::<Vec<u64>>());
        // one_in: deterministic per seed, different across seeds (for
        // these particular seeds), and never empty at rate 1.
        let a = fires(&Trigger::OneIn { n: 3 }, 1);
        assert_eq!(a, fires(&Trigger::OneIn { n: 3 }, 1));
        assert_eq!(
            fires(&Trigger::OneIn { n: 1 }, 9),
            (1..=12).collect::<Vec<u64>>()
        );
        // Same seed, different point => independent firing pattern.
        let other: Vec<u64> = (1..=12)
            .filter(|&h| trigger_fires(&Trigger::OneIn { n: 3 }, h, 1, "store.write"))
            .collect();
        assert!(a != other || a.is_empty() || !other.is_empty());
    }

    #[test]
    fn armed_plans_fire_count_and_report() {
        let _guard = arm_lock();
        let p = plan(
            r#"{"schema_version": 1, "seed": 3, "faults": [
                {"point": "store.write.fsync", "action": "error", "hits": [2]},
                {"point": "store.read", "action": "torn", "every": 2}
            ]}"#,
        );
        arm(p.clone()).expect("arms");
        assert!(armed());
        assert_eq!(arm(p), Err(ChaosError::AlreadyArmed));
        assert_eq!(faultpoint!("store.write.fsync"), None); // hit 1
        assert_eq!(faultpoint!("store.write.fsync"), Some(Fault::Error)); // hit 2
        assert_eq!(faultpoint!("store.write.fsync"), None); // hit 3
        assert_eq!(faultpoint!("store.read"), None); // hit 1
        assert_eq!(faultpoint!("store.read"), Some(Fault::Torn)); // hit 2
        assert_eq!(faultpoint!("engine.spill"), None); // not in the plan
        let report = disarm().expect("was armed");
        assert!(!armed());
        assert_eq!(report.seed, 3);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].point, "store.write.fsync");
        assert_eq!(report.points[0].hits, 3);
        assert_eq!(report.points[0].rules[0].fired, 1);
        assert_eq!(report.points[1].hits, 2);
        assert_eq!(report.points[1].rules[0].fired, 1);
        // Rendered report carries the same accounting.
        let rendered = serde_json::to_string(&report.to_value()).expect("renders");
        assert!(rendered.contains("store.write.fsync"));
        assert!(rendered.contains("hits [2]"));
    }

    #[test]
    fn first_matching_rule_wins_each_hit() {
        let _guard = arm_lock();
        let p = plan(
            r#"{"schema_version": 1, "faults": [
                {"point": "store.read", "action": "error", "hits": [1]},
                {"point": "store.read", "action": "torn", "always": true}
            ]}"#,
        );
        arm(p).expect("arms");
        assert_eq!(evaluate("store.read"), Some(Fault::Error));
        assert_eq!(evaluate("store.read"), Some(Fault::Torn));
        let report = disarm().expect("was armed");
        assert_eq!(report.points[0].rules[0].fired, 1);
        assert_eq!(report.points[0].rules[1].fired, 1);
    }

    #[test]
    fn injected_panics_carry_a_recognizable_message() {
        let _guard = arm_lock();
        let p = plan(
            r#"{"schema_version": 1, "faults": [
                {"point": "serve.worker.exec", "action": "panic", "hits": [1]}
            ]}"#,
        );
        arm(p).expect("arms");
        let outcome = std::panic::catch_unwind(|| evaluate("serve.worker.exec"));
        disarm();
        let payload = outcome.expect_err("panic rule fired");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("chaos: injected panic"), "{msg:?}");
    }

    #[test]
    fn hand_built_plans_are_validated_at_arm_time() {
        let _guard = arm_lock();
        let bad = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: "no.such.point".to_owned(),
                action: Action::Error,
                trigger: Trigger::Always,
            }],
        };
        assert!(matches!(arm(bad), Err(ChaosError::Invalid(_))));
        assert!(!armed());
    }
}
