//! The schema-versioned JSON *fault plan*: which injection points
//! misbehave, how, and on exactly which hits.
//!
//! A plan is deterministic by construction. Triggers are functions of
//! per-point hit counters and the plan seed — never wall clock, thread
//! ids, or randomness drawn at run time — so a chaos failure replays
//! bit-for-bit from the plan file alone:
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "seed": 42,
//!   "faults": [
//!     {"point": "store.write.fsync", "action": "error", "hits": [1, 3]},
//!     {"point": "serve.conn.read",   "action": "delay", "ms": 40, "every": 2},
//!     {"point": "serve.worker.exec", "action": "panic", "range": [2, 4]},
//!     {"point": "store.read",        "action": "torn",  "one_in": 3},
//!     {"point": "serve.conn.write",  "action": "disconnect", "always": true}
//!   ]
//! }
//! ```
//!
//! Every `point` must name an entry of the static [`CATALOG`] and every
//! `action` must be one the point supports — unknown points and
//! unsupported actions are arm-time errors, not silent no-ops, so a
//! plan that drifts out of sync with the code fails loudly.

use serde::{map_get, Value};
use std::fmt;

/// Version required in (and stamped onto) fault-plan documents.
pub const FAULT_PLAN_SCHEMA_VERSION: u64 = 1;

/// The action classes a plan can request, independent of parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Fail the guarded operation with an injected error.
    Error,
    /// Let the operation proceed but truncate/corrupt its effect
    /// (partial write, half-read payload, half-written response line).
    Torn,
    /// Drop the connection mid-operation (serve points only).
    Disconnect,
    /// Panic on the evaluating thread (worker points only).
    Panic,
    /// Stall the operation for a fixed number of milliseconds.
    Delay,
}

impl ActionKind {
    /// The plan-file spelling of the kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ActionKind::Error => "error",
            ActionKind::Torn => "torn",
            ActionKind::Disconnect => "disconnect",
            ActionKind::Panic => "panic",
            ActionKind::Delay => "delay",
        }
    }
}

/// One fully parameterized action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// See [`ActionKind::Error`].
    Error,
    /// See [`ActionKind::Torn`].
    Torn,
    /// See [`ActionKind::Disconnect`].
    Disconnect,
    /// See [`ActionKind::Panic`].
    Panic,
    /// See [`ActionKind::Delay`].
    Delay {
        /// Stall duration in milliseconds.
        ms: u64,
    },
}

impl Action {
    /// The action's class.
    #[must_use]
    pub fn kind(&self) -> ActionKind {
        match self {
            Action::Error => ActionKind::Error,
            Action::Torn => ActionKind::Torn,
            Action::Disconnect => ActionKind::Disconnect,
            Action::Panic => ActionKind::Panic,
            Action::Delay { .. } => ActionKind::Delay,
        }
    }
}

/// When a rule fires, as a pure function of the point's 1-based hit
/// counter (plus the plan seed for [`Trigger::OneIn`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fires on every hit.
    Always,
    /// Fires on exactly the listed 1-based hits.
    Hits(Vec<u64>),
    /// Fires on every hit in `from..=to` (1-based, inclusive).
    Range {
        /// First firing hit.
        from: u64,
        /// Last firing hit.
        to: u64,
    },
    /// Fires on hits `offset + n`, `offset + 2n`, ... — every n-th hit
    /// after skipping the first `offset`.
    Every {
        /// The period (>= 1).
        n: u64,
        /// Hits to skip before the cadence starts.
        offset: u64,
    },
    /// Fires on roughly one hit in `n`, decided by a seeded hash of
    /// `(seed, point, hit)` — deterministic for a given plan, but
    /// spread pseudo-uniformly instead of periodically.
    OneIn {
        /// The inverse firing rate (>= 1).
        n: u64,
    },
}

impl Trigger {
    /// A compact human rendering for reports (`"hits [1, 3]"`,
    /// `"every 2 (offset 0)"`, ...).
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Trigger::Always => "always".to_owned(),
            Trigger::Hits(hs) => format!("hits {hs:?}"),
            Trigger::Range { from, to } => format!("range [{from}, {to}]"),
            Trigger::Every { n, offset } => format!("every {n} (offset {offset})"),
            Trigger::OneIn { n } => format!("one_in {n}"),
        }
    }
}

/// One parsed fault rule: at `point`, perform `action` whenever
/// `trigger` fires. Rules for the same point are checked in plan order
/// and the first firing rule wins that hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The injection-point name (must be in [`CATALOG`]).
    pub point: String,
    /// What to do when the trigger fires.
    pub action: Action,
    /// On which hits to do it.
    pub trigger: Trigger,
}

/// One parsed, validated fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into [`Trigger::OneIn`] hashes.
    pub seed: u64,
    /// The rules, in plan order.
    pub rules: Vec<FaultRule>,
}

/// A plan that failed to parse or validate, with a teaching message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// One catalog entry: a named injection point and the actions its call
/// site knows how to perform.
#[derive(Debug, Clone, Copy)]
pub struct PointInfo {
    /// The `faultpoint!` name.
    pub name: &'static str,
    /// Actions the guarded call site implements.
    pub actions: &'static [ActionKind],
    /// Where the point sits and what each action means there.
    pub doc: &'static str,
}

/// The static catalog of injection points threaded through the stack.
/// `docs/chaos.md` mirrors this table; adding a point means adding the
/// guard, the entry here, and the doc row.
pub const CATALOG: &[PointInfo] = &[
    PointInfo {
        name: "store.read",
        actions: &[ActionKind::Error, ActionKind::Torn],
        doc: "ResultStore::load after a successful disk read: `error` quarantines the \
              object as if the read failed; `torn` halves the bytes handed to \
              validation (which must quarantine).",
    },
    PointInfo {
        name: "store.write",
        actions: &[ActionKind::Error, ActionKind::Torn],
        doc: "ResultStore::save body write: `error` fails the write (tmp removed); \
              `torn` persists a truncated payload that later loads must quarantine.",
    },
    PointInfo {
        name: "store.write.fsync",
        actions: &[ActionKind::Error],
        doc: "ResultStore::save before fsync: the write fails after the bytes landed.",
    },
    PointInfo {
        name: "store.write.rename",
        actions: &[ActionKind::Error],
        doc: "ResultStore::save before the tmp->object rename: publication fails.",
    },
    PointInfo {
        name: "engine.spill",
        actions: &[ActionKind::Error],
        doc: "Engine cache spill to the store tier: the spill is dropped and counted \
              as a store write failure; synthesis must not notice.",
    },
    PointInfo {
        name: "serve.conn.read",
        actions: &[ActionKind::Disconnect, ActionKind::Error, ActionKind::Delay],
        doc: "Per read chunk on a client connection: `disconnect` closes mid-line; \
              `error` fails the read; `delay` simulates a slow client link.",
    },
    PointInfo {
        name: "serve.conn.write",
        actions: &[ActionKind::Disconnect, ActionKind::Error, ActionKind::Delay],
        doc: "Per response line written: `disconnect` sends half the line then \
              closes; `error` fails the write; `delay` stalls it.",
    },
    PointInfo {
        name: "serve.worker.exec",
        actions: &[ActionKind::Panic, ActionKind::Delay],
        doc: "In the worker, before executing a dequeued request: `panic` drives \
              the catch_unwind/internal-error path; `delay` makes work slow.",
    },
];

/// Looks a point up in [`CATALOG`].
#[must_use]
pub fn point_info(name: &str) -> Option<&'static PointInfo> {
    CATALOG.iter().find(|p| p.name == name)
}

impl FaultPlan {
    /// Parses and validates one plan document.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first offending field when the
    /// text is not JSON, the schema version is wrong, a point is not in
    /// the catalog, an action is unsupported at its point, a trigger is
    /// malformed, or an unknown key is present (typo protection).
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| PlanError(format!("not valid JSON: {e}")))?;
        let entries = doc
            .as_map()
            .ok_or_else(|| PlanError("plan must be a JSON object".to_owned()))?;
        for (k, _) in entries {
            let k = k.as_str().unwrap_or("<non-string key>");
            if !matches!(k, "schema_version" | "seed" | "faults") {
                return Err(PlanError(format!(
                    "unknown plan key {k:?} (expected schema_version, seed, faults)"
                )));
            }
        }
        match map_get(entries, "schema_version").and_then(as_u64) {
            Some(v) if v == FAULT_PLAN_SCHEMA_VERSION => {}
            Some(v) => {
                return Err(PlanError(format!(
                    "unsupported schema_version {v} (this build speaks {FAULT_PLAN_SCHEMA_VERSION})"
                )))
            }
            None => {
                return Err(PlanError(
                    "missing or non-integer \"schema_version\"".to_owned(),
                ))
            }
        }
        let seed = match map_get(entries, "seed") {
            None => 0,
            Some(v) => as_u64(v)
                .ok_or_else(|| PlanError("\"seed\" must be a non-negative integer".to_owned()))?,
        };
        let faults = match map_get(entries, "faults") {
            Some(Value::Seq(items)) => items,
            _ => return Err(PlanError("missing \"faults\" array".to_owned())),
        };
        let mut rules = Vec::with_capacity(faults.len());
        for (i, item) in faults.iter().enumerate() {
            rules.push(
                parse_rule(item)
                    .map_err(|PlanError(msg)| PlanError(format!("fault[{i}]: {msg}")))?,
            );
        }
        Ok(FaultPlan { seed, rules })
    }
}

const RULE_KEYS: &[&str] = &[
    "point", "action", "ms", "always", "hits", "range", "every", "offset", "one_in",
];

fn parse_rule(item: &Value) -> Result<FaultRule, PlanError> {
    let entries = item
        .as_map()
        .ok_or_else(|| PlanError("each fault must be a JSON object".to_owned()))?;
    for (k, _) in entries {
        let k = k.as_str().unwrap_or("<non-string key>");
        if !RULE_KEYS.contains(&k) {
            return Err(PlanError(format!(
                "unknown key {k:?} (expected one of {RULE_KEYS:?})"
            )));
        }
    }
    let point = match map_get(entries, "point") {
        Some(Value::Str(p)) => p.clone(),
        _ => return Err(PlanError("missing \"point\" string".to_owned())),
    };
    let info = point_info(&point).ok_or_else(|| {
        let known: Vec<&str> = CATALOG.iter().map(|p| p.name).collect();
        PlanError(format!("unknown point {point:?} (catalog: {known:?})"))
    })?;
    let action = match map_get(entries, "action").and_then(Value::as_str) {
        Some("error") => Action::Error,
        Some("torn") => Action::Torn,
        Some("disconnect") => Action::Disconnect,
        Some("panic") => Action::Panic,
        Some("delay") => {
            let ms = map_get(entries, "ms").and_then(as_u64).ok_or_else(|| {
                PlanError("action \"delay\" needs a non-negative integer \"ms\"".to_owned())
            })?;
            Action::Delay { ms }
        }
        Some(other) => {
            return Err(PlanError(format!(
                "unknown action {other:?} (expected error, torn, disconnect, panic, delay)"
            )))
        }
        None => return Err(PlanError("missing \"action\" string".to_owned())),
    };
    if !info.actions.contains(&action.kind()) {
        let allowed: Vec<&str> = info.actions.iter().map(|a| a.as_str()).collect();
        return Err(PlanError(format!(
            "point {point:?} does not support action {:?} (supported: {allowed:?})",
            action.kind().as_str()
        )));
    }
    if action.kind() != ActionKind::Delay && map_get(entries, "ms").is_some() {
        return Err(PlanError(
            "\"ms\" is only meaningful with action \"delay\"".to_owned(),
        ));
    }
    let trigger = parse_trigger(entries)?;
    Ok(FaultRule {
        point,
        action,
        trigger,
    })
}

fn parse_trigger(entries: &[(Value, Value)]) -> Result<Trigger, PlanError> {
    let present: Vec<&str> = ["always", "hits", "range", "every", "one_in"]
        .into_iter()
        .filter(|k| map_get(entries, k).is_some())
        .collect();
    if present.len() > 1 {
        return Err(PlanError(format!(
            "at most one trigger per fault (found {present:?})"
        )));
    }
    if map_get(entries, "offset").is_some() && !present.contains(&"every") {
        return Err(PlanError(
            "\"offset\" is only meaningful with \"every\"".to_owned(),
        ));
    }
    match present.first() {
        None => Ok(Trigger::Always),
        Some(&"always") => match map_get(entries, "always") {
            Some(Value::Bool(true)) => Ok(Trigger::Always),
            _ => Err(PlanError("\"always\" must be true (or omitted)".to_owned())),
        },
        Some(&"hits") => {
            let items = match map_get(entries, "hits") {
                Some(Value::Seq(items)) if !items.is_empty() => items,
                _ => {
                    return Err(PlanError(
                        "\"hits\" must be a non-empty array of positive integers".to_owned(),
                    ))
                }
            };
            let mut hits = Vec::with_capacity(items.len());
            for v in items {
                match as_u64(v) {
                    Some(h) if h >= 1 => hits.push(h),
                    _ => {
                        return Err(PlanError(
                            "\"hits\" entries must be positive integers (hits are 1-based)"
                                .to_owned(),
                        ))
                    }
                }
            }
            Ok(Trigger::Hits(hits))
        }
        Some(&"range") => {
            let items = match map_get(entries, "range") {
                Some(Value::Seq(items)) if items.len() == 2 => items,
                _ => return Err(PlanError("\"range\" must be a [from, to] pair".to_owned())),
            };
            let from = as_u64(&items[0]).filter(|&f| f >= 1);
            let to = as_u64(&items[1]);
            match (from, to) {
                (Some(from), Some(to)) if from <= to => Ok(Trigger::Range { from, to }),
                _ => Err(PlanError(
                    "\"range\" needs 1 <= from <= to (hits are 1-based)".to_owned(),
                )),
            }
        }
        Some(&"every") => {
            let n = map_get(entries, "every")
                .and_then(as_u64)
                .filter(|&n| n >= 1)
                .ok_or_else(|| PlanError("\"every\" must be a positive integer".to_owned()))?;
            let offset = match map_get(entries, "offset") {
                None => 0,
                Some(v) => as_u64(v).ok_or_else(|| {
                    PlanError("\"offset\" must be a non-negative integer".to_owned())
                })?,
            };
            Ok(Trigger::Every { n, offset })
        }
        Some(&"one_in") => {
            let n = map_get(entries, "one_in")
                .and_then(as_u64)
                .filter(|&n| n >= 1)
                .ok_or_else(|| PlanError("\"one_in\" must be a positive integer".to_owned()))?;
            Ok(Trigger::OneIn { n })
        }
        Some(_) => unreachable!("trigger keys are enumerated above"),
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}
