//! Cached handles to the fault plane's own telemetry (same pattern as
//! `rchls-serve`'s obs module: one registry lookup per metric per
//! process, atomics on the hot path).

use rchls_telemetry::metrics::{self, Counter};
use std::sync::{Arc, OnceLock};

/// `chaos.evaluations` — armed-plan evaluations of any point.
pub(crate) fn evaluations() -> &'static Counter {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::counter("chaos.evaluations"))
}

/// `chaos.injected` — rule firings (faults actually performed).
pub(crate) fn injected() -> &'static Counter {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::counter("chaos.injected"))
}
