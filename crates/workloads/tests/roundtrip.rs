//! The DFG text format round-trips: `parse_dfg(dfg.to_text()) == dfg`
//! over the whole family of generated workloads, so `file:` specs can
//! carry any graph the `random:` source can make.

use proptest::prelude::*;
use rchls_dfg::parse_dfg;
use rchls_workloads::{load_workload, random_layered_dfg, RandomDfgConfig};

fn configs() -> impl Strategy<Value = RandomDfgConfig> {
    (1usize..60, 1usize..8, 0u64..1000, 0u32..=10, 0u32..=10).prop_map(
        |(nodes, layers, seed, edge_decile, mul_decile)| RandomDfgConfig {
            nodes,
            layers,
            seed,
            edge_probability: f64::from(edge_decile) / 10.0,
            multiplier_fraction: f64::from(mul_decile) / 10.0,
        },
    )
}

proptest! {
    #[test]
    fn text_format_round_trips_random_workloads(config in configs()) {
        let dfg = random_layered_dfg(&config);
        let text = dfg.to_text();
        let back = parse_dfg(&text).unwrap();
        prop_assert_eq!(&back, &dfg);
        // And the printer is a fixed point: printing the re-parse gives
        // the same text.
        prop_assert_eq!(back.to_text(), text);
    }

    #[test]
    fn random_specs_round_trip_through_the_file_source(seed in 0u64..50) {
        let spec = format!("random:20x4@{seed}");
        let w = load_workload(&spec).unwrap();
        let dir = std::env::temp_dir().join("rchls-roundtrip-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("w{seed}.dfg"));
        std::fs::write(&path, w.dfg.to_text()).unwrap();
        let again = load_workload(&format!("file:{}", path.display())).unwrap();
        prop_assert_eq!(again.dfg, w.dfg);
    }
}

#[test]
fn builtin_benchmarks_round_trip_structurally() {
    // Builder-made graphs may order a node's predecessors differently
    // from the canonical text ordering, so compare re-parse against
    // re-parse (the canonical form) and check the structural counts
    // against the original.
    for (name, ctor) in rchls_workloads::all_benchmarks() {
        let dfg = ctor();
        let text = dfg.to_text();
        let back = parse_dfg(&text).unwrap();
        assert_eq!(back.name(), dfg.name(), "{name}");
        assert_eq!(back.node_count(), dfg.node_count(), "{name}");
        assert_eq!(back.edge_count(), dfg.edge_count(), "{name}");
        assert_eq!(back.to_text(), text, "{name}");
        assert_eq!(parse_dfg(&back.to_text()).unwrap(), back, "{name}");
    }
}
