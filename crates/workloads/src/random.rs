//! Seeded random layered DAG generation for property tests and scaling
//! benches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rchls_dfg::{Dfg, NodeId, OpKind};

/// Configuration for [`random_layered_dfg`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDfgConfig {
    /// Total number of operations.
    pub nodes: usize,
    /// Number of layers (depth of the DAG skeleton).
    pub layers: usize,
    /// Probability of an extra edge between ops in adjacent layers.
    pub edge_probability: f64,
    /// Fraction of multiplier-class operations.
    pub multiplier_fraction: f64,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for RandomDfgConfig {
    fn default() -> RandomDfgConfig {
        RandomDfgConfig {
            nodes: 30,
            layers: 6,
            edge_probability: 0.3,
            multiplier_fraction: 0.35,
            seed: 0,
        }
    }
}

/// Generates a random layered DAG: nodes are spread round-robin over
/// `layers`, every non-source node gets at least one predecessor in the
/// previous layer, and extra adjacent-layer edges are added with
/// `edge_probability`.
///
/// The same configuration always yields the same graph.
///
/// # Panics
///
/// Panics if `nodes == 0`, `layers == 0`, or the probabilities are outside
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rchls_workloads::{random_layered_dfg, RandomDfgConfig};
///
/// let g = random_layered_dfg(&RandomDfgConfig { nodes: 40, seed: 7, ..Default::default() });
/// assert_eq!(g.node_count(), 40);
/// assert!(g.validate().is_ok());
/// ```
#[must_use]
pub fn random_layered_dfg(config: &RandomDfgConfig) -> Dfg {
    assert!(config.nodes > 0, "need at least one node");
    assert!(config.layers > 0, "need at least one layer");
    assert!(
        (0.0..=1.0).contains(&config.edge_probability),
        "edge probability must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.multiplier_fraction),
        "multiplier fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Dfg::new(format!("random-{}-{}", config.nodes, config.seed));
    let mut layer_of: Vec<usize> = Vec::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let kind = if rng.gen_bool(config.multiplier_fraction) {
            OpKind::Mul
        } else {
            OpKind::Add
        };
        g.add_node(kind, format!("v{i}"));
        layer_of.push(i % config.layers);
    }
    let node = |i: usize| NodeId::new(i as u32);
    for i in 0..config.nodes {
        let l = layer_of[i];
        if l == 0 {
            continue;
        }
        let prev: Vec<usize> = (0..config.nodes)
            .filter(|&j| layer_of[j] == l - 1)
            .collect();
        if prev.is_empty() {
            continue;
        }
        // Guaranteed predecessor keeps the graph connected layer-to-layer.
        let anchor = prev[rng.gen_range(0..prev.len())];
        // Insert each node's predecessor edges in ascending source order
        // (`prev` is ascending by construction): the graph then has the
        // same canonical edge ordering `parse_dfg` rebuilds from
        // `Dfg::to_text`, so generated workloads round-trip through the
        // text format as `==`-identical values.
        let sources = prev
            .iter()
            .copied()
            .filter(|&j| j == anchor || rng.gen_bool(config.edge_probability));
        for j in sources {
            let _ = g.add_edge(node(j), node(i));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDfgConfig {
            seed: 42,
            ..Default::default()
        };
        let a = random_layered_dfg(&cfg);
        let b = random_layered_dfg(&cfg);
        assert_eq!(a, b);
        let c = random_layered_dfg(&RandomDfgConfig {
            seed: 43,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn always_acyclic_and_sized() {
        for seed in 0..20 {
            let cfg = RandomDfgConfig {
                nodes: 25 + seed as usize,
                seed,
                ..Default::default()
            };
            let g = random_layered_dfg(&cfg);
            assert_eq!(g.node_count(), cfg.nodes);
            assert!(g.validate().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn depth_bounded_by_layers() {
        let cfg = RandomDfgConfig {
            nodes: 60,
            layers: 5,
            seed: 3,
            ..Default::default()
        };
        let g = random_layered_dfg(&cfg);
        assert!(g.depth().unwrap() <= 5);
    }

    #[test]
    fn multiplier_fraction_extremes() {
        let all_mul = random_layered_dfg(&RandomDfgConfig {
            multiplier_fraction: 1.0,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(
            all_mul.count_class(rchls_dfg::OpClass::Multiplier),
            all_mul.node_count()
        );
        let no_mul = random_layered_dfg(&RandomDfgConfig {
            multiplier_fraction: 0.0,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(no_mul.count_class(rchls_dfg::OpClass::Multiplier), 0);
    }
}
