//! Benchmark data-flow graphs for reliability-centric HLS.
//!
//! The paper evaluates on three classic HLS benchmarks: a 16-point
//! symmetric FIR filter, a fifth-order elliptic wave filter, and the
//! HLSynth92 differential-equation solver. The original HLSynth92 FTP
//! repository is long gone, so these graphs are reconstructed from the
//! literature; op counts are chosen to match the paper's own arithmetic
//! where it is recoverable (the FIR graph's 23 operations reproduce the
//! published `0.969²³ = 0.48467` exactly).
//!
//! Ingestion is an **open registry** (the [`WorkloadSource`] trait,
//! mirroring `rchls_core::flow`): any workload is addressable by a spec
//! string — `builtin:<name>`, `random:<nodes>x<layers>@<seed>`,
//! `file:<path>`, or a scheme registered by an out-of-tree crate via
//! [`register_workload_source`]. See [`load_workload`].
//!
//! # Examples
//!
//! ```
//! let fir = rchls_workloads::fir16();
//! assert_eq!(fir.node_count(), 23);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod random;
mod source;

pub use random::{random_layered_dfg, RandomDfgConfig};
pub use source::{
    load_workload, register_workload_source, workload_source, workload_source_schemes,
    BuiltinSource, FileSource, RandomSource, Workload, WorkloadError, WorkloadSource,
};

use rchls_dfg::{Dfg, DfgBuilder, OpKind};

/// The paper's Figure 4(a) example: six chained additions
/// (`A,B → C → D,E → F`).
///
/// Used by the Figure 5 experiment (two alternative schedules under
/// `Ld = 5`, `Ad = 4`).
#[must_use]
pub fn figure4a() -> Dfg {
    DfgBuilder::new("figure4a")
        .ops(&["A", "B", "C", "D", "E", "F"], OpKind::Add)
        .dep("A", "C")
        .dep("B", "C")
        .dep("C", "D")
        .dep("C", "E")
        .dep("D", "F")
        .dep("E", "F")
        .build()
        .expect("figure 4a graph is statically valid")
}

/// 16-point symmetric FIR filter: 8 pre-adds (`x_i + x_{15-i}`), 8
/// coefficient multiplies, and a 7-add accumulation tree — 23 operations
/// (15 adder-class, 8 multiplier-class), matching the paper's FIR numbers.
#[must_use]
pub fn fir16() -> Dfg {
    let mut b = DfgBuilder::new("fir16");
    // Pre-adders exploiting coefficient symmetry.
    for i in 0..8 {
        b = b.op(&format!("p{i}"), OpKind::Add);
    }
    // Coefficient multipliers.
    for i in 0..8 {
        b = b
            .op(&format!("m{i}"), OpKind::Mul)
            .dep(&format!("p{i}"), &format!("m{i}"));
    }
    // Balanced accumulation tree: 4 + 2 + 1 adds.
    for i in 0..4 {
        let s = format!("s{i}");
        b = b
            .op(&s, OpKind::Add)
            .dep(&format!("m{}", 2 * i), &s)
            .dep(&format!("m{}", 2 * i + 1), &s);
    }
    for i in 0..2 {
        let t = format!("t{i}");
        b = b
            .op(&t, OpKind::Add)
            .dep(&format!("s{}", 2 * i), &t)
            .dep(&format!("s{}", 2 * i + 1), &t);
    }
    b = b.op("y", OpKind::Add).dep("t0", "y").dep("t1", "y");
    b.build().expect("fir16 graph is statically valid")
}

/// Fifth-order elliptic wave filter (the classic HLS benchmark): 34
/// operations — 26 additions and 8 multiplications.
///
/// The original HLSynth92 netlist is no longer distributed, so this is a
/// reconstruction preserving the EWF's defining structural signature: a
/// 14-addition serial spine (the filter's feedback ladder) that fixes the
/// unit-delay critical path at 14 steps, with the eight coefficient
/// multipliers tapping the spine and re-entering three stages later
/// (giving them the small scheduling mobility that makes the EWF the
/// standard stress test for time-constrained scheduling), plus the
/// pre-add per multiplier and four output-section adds.
#[must_use]
pub fn ewf() -> Dfg {
    let mut b = DfgBuilder::new("ewf");
    // The 14-add feedback spine c1 -> c2 -> ... -> c14.
    for i in 1..=14 {
        b = b.op(&format!("c{i}"), OpKind::Add);
        if i > 1 {
            b = b.dep(&format!("c{}", i - 1), &format!("c{i}"));
        }
    }
    // Eight multiplier taps: pre-add p_k off the spine, multiplier m_k,
    // result folded back in three stages down (c_{k+3}).
    for k in 1..=8 {
        let (p, m) = (format!("p{k}"), format!("m{k}"));
        b = b
            .op(&p, OpKind::Add)
            .op(&m, OpKind::Mul)
            .dep(&format!("c{}", k.max(2) - 1), &p)
            .dep(&p, &m)
            .dep(&m, &format!("c{}", k + 3));
    }
    // Output section: four sink adds off the spine tail.
    for j in 1..=4 {
        let o = format!("o{j}");
        b = b
            .op(&o, OpKind::Add)
            .dep(&format!("c{}", 9 + j), &o)
            .dep(&format!("m{}", 2 * j), &o);
    }
    b.build().expect("ewf graph is statically valid")
}

/// HLSynth92 differential-equation solver (`y'' + 3xy' + 3y = 0` Euler
/// step): 11 operations — 6 multiplies, 2 adds, 2 subtracts, 1 compare —
/// matching the paper's DiffEq arithmetic (`0.969¹¹ ≈ 0.707` for the
/// all-type-2 design).
#[must_use]
pub fn diffeq() -> Dfg {
    DfgBuilder::new("diffeq")
        // u' = u - 3*x*u*dx - 3*y*dx ; y' = y + u*dx ; x' = x + dx ; x' < a
        .ops(&["m1", "m2", "m3", "m4", "m5", "m6"], OpKind::Mul)
        .ops(&["a1", "a2"], OpKind::Add)
        .ops(&["s1", "s2"], OpKind::Sub)
        .op("c1", OpKind::Cmp)
        .dep("m1", "m3") // (3x)·(u dx)
        .dep("m2", "m3")
        .dep("m4", "s2") // 3y·dx
        .dep("m3", "s1") // u - 3xudx
        .dep("s1", "s2") // ... - 3ydx
        .dep("m5", "a1") // y + u·dx
        .dep("m6", "a1") // (second product feeding the y update)
        .dep("a2", "c1") // x' < a
        .build()
        .expect("diffeq graph is statically valid")
}

/// Fourth-order auto-regressive (AR) lattice filter: 28 operations
/// (12 additions, 16 multiplications). A standard extra benchmark with a
/// much higher multiplier pressure than the paper's three, used by the
/// scaling benches.
#[must_use]
pub fn ar_lattice() -> Dfg {
    let mut b = DfgBuilder::new("ar-lattice");
    // Four lattice stages; stage i has 4 multiplies and 3 adds wired in the
    // classic butterfly, stages chained through their first adder.
    for i in 0..4 {
        for j in 0..4 {
            b = b.op(&format!("m{i}{j}"), OpKind::Mul);
        }
        for j in 0..3 {
            b = b.op(&format!("a{i}{j}"), OpKind::Add);
        }
        b = b
            .dep(&format!("m{i}0"), &format!("a{i}0"))
            .dep(&format!("m{i}1"), &format!("a{i}0"))
            .dep(&format!("m{i}2"), &format!("a{i}1"))
            .dep(&format!("m{i}3"), &format!("a{i}1"))
            .dep(&format!("a{i}0"), &format!("a{i}2"))
            .dep(&format!("a{i}1"), &format!("a{i}2"));
        if i > 0 {
            let prev = i - 1;
            b = b
                .dep(&format!("a{prev}2"), &format!("m{i}0"))
                .dep(&format!("a{prev}2"), &format!("m{i}2"));
        }
    }
    b.build().expect("ar lattice graph is statically valid")
}

/// Parameterized symmetric FIR filter with `taps` taps (`taps` must be
/// even and at least 2): `taps/2` pre-adds, `taps/2` multiplies, and a
/// balanced accumulation tree.
///
/// `fir(16)` is structurally identical to [`fir16`].
///
/// # Panics
///
/// Panics if `taps` is odd or less than 2.
#[must_use]
pub fn fir(taps: usize) -> Dfg {
    assert!(
        taps >= 2 && taps.is_multiple_of(2),
        "taps must be even and >= 2"
    );
    let half = taps / 2;
    let mut b = DfgBuilder::new(format!("fir{taps}"));
    for i in 0..half {
        b = b.op(&format!("p{i}"), OpKind::Add);
        b = b
            .op(&format!("m{i}"), OpKind::Mul)
            .dep(&format!("p{i}"), &format!("m{i}"));
    }
    // Balanced accumulation tree over the products.
    let mut layer: Vec<String> = (0..half).map(|i| format!("m{i}")).collect();
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for (j, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                let name = format!("t{level}_{j}");
                b = b
                    .op(&name, OpKind::Add)
                    .dep(&pair[0], &name)
                    .dep(&pair[1], &name);
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
        level += 1;
    }
    b.build().expect("fir graph is statically valid")
}

/// 8-point decimation-in-time FFT-style butterfly graph: three stages of
/// four butterflies each; every butterfly is one multiply (twiddle) plus
/// two adds — 12 multiplies and 24 adds.
///
/// A wide, shallow graph (depth 6 at unit delays) that stresses
/// functional-unit pressure rather than the critical path — the opposite
/// regime from the EWF.
#[must_use]
pub fn butterfly8() -> Dfg {
    let mut b = DfgBuilder::new("butterfly8");
    // Stage 0 butterflies have no predecessors; stages 1-2 consume the two
    // adds of the corresponding butterflies of the previous stage.
    for stage in 0..3 {
        for k in 0..4 {
            let m = format!("m{stage}_{k}");
            let lo = format!("a{stage}_{k}");
            let hi = format!("b{stage}_{k}");
            b = b
                .op(&m, OpKind::Mul)
                .op(&lo, OpKind::Add)
                .op(&hi, OpKind::Sub)
                .dep(&m, &lo)
                .dep(&m, &hi);
            if stage > 0 {
                let prev = stage - 1;
                // Classic stride pattern: butterfly k reads from k and k^stride.
                let stride = 1usize << (stage - 1);
                let partner = (k ^ stride) % 4;
                b = b
                    .dep(&format!("a{prev}_{k}"), &m)
                    .dep(&format!("b{prev}_{partner}"), &lo);
            }
        }
    }
    b.build().expect("butterfly graph is statically valid")
}

/// Cascade of `n` IIR biquad sections: each section is 4 multiplies and
/// 4 adds with a serial accumulate, chained through the section output —
/// a medium-depth, multiplier-heavy workload.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn iir_cascade(n: usize) -> Dfg {
    assert!(n > 0, "need at least one biquad section");
    let mut b = DfgBuilder::new(format!("iir{n}"));
    for s in 0..n {
        for j in 0..4 {
            b = b.op(&format!("m{s}_{j}"), OpKind::Mul);
        }
        b = b
            .op(&format!("a{s}_0"), OpKind::Add)
            .op(&format!("a{s}_1"), OpKind::Add)
            .op(&format!("a{s}_2"), OpKind::Add)
            .op(&format!("a{s}_3"), OpKind::Add)
            .dep(&format!("m{s}_0"), &format!("a{s}_0"))
            .dep(&format!("m{s}_1"), &format!("a{s}_0"))
            .dep(&format!("m{s}_2"), &format!("a{s}_1"))
            .dep(&format!("m{s}_3"), &format!("a{s}_1"))
            .dep(&format!("a{s}_0"), &format!("a{s}_2"))
            .dep(&format!("a{s}_1"), &format!("a{s}_2"))
            .dep(&format!("a{s}_2"), &format!("a{s}_3"));
        if s > 0 {
            for j in 0..2 {
                b = b.dep(&format!("a{}_3", s - 1), &format!("m{s}_{j}"));
            }
        }
    }
    b.build().expect("iir cascade graph is statically valid")
}

/// A named benchmark constructor, as listed by [`all_benchmarks`].
pub type NamedBenchmark = (&'static str, fn() -> Dfg);

/// [`iir_cascade`] at its standard four-section depth, as a plain
/// constructor so sweep drivers can list it.
#[must_use]
pub fn iir4() -> Dfg {
    iir_cascade(4)
}

/// All named benchmarks as `(name, constructor)` pairs, for sweep drivers.
#[must_use]
pub fn all_benchmarks() -> Vec<NamedBenchmark> {
    vec![
        ("figure4a", figure4a as fn() -> Dfg),
        ("fir16", fir16),
        ("ewf", ewf),
        ("diffeq", diffeq),
        ("ar-lattice", ar_lattice),
        ("butterfly8", butterfly8),
        ("iir4", iir4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rchls_dfg::OpClass;

    #[test]
    fn figure4a_shape() {
        let g = figure4a();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.depth().unwrap(), 4);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn fir16_matches_paper_op_counts() {
        let g = fir16();
        assert_eq!(g.node_count(), 23);
        assert_eq!(g.count_class(OpClass::Adder), 15);
        assert_eq!(g.count_class(OpClass::Multiplier), 8);
        // Pre-add -> multiply -> 3-level accumulation tree: depth 5.
        assert_eq!(g.depth().unwrap(), 5);
    }

    #[test]
    fn ewf_matches_canonical_op_counts() {
        let g = ewf();
        assert_eq!(g.node_count(), 34);
        assert_eq!(g.count_class(OpClass::Adder), 26);
        assert_eq!(g.count_class(OpClass::Multiplier), 8);
        assert!(g.validate().is_ok());
        // The EWF's defining feature: the 14-step feedback spine.
        assert_eq!(g.depth().unwrap(), 14);
    }

    #[test]
    fn diffeq_matches_paper_op_counts() {
        let g = diffeq();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.count_class(OpClass::Multiplier), 6);
        assert_eq!(g.count_class(OpClass::Adder), 5); // add + sub + cmp classes
        assert!(g.validate().is_ok());
    }

    #[test]
    fn ar_lattice_shape() {
        let g = ar_lattice();
        assert_eq!(g.node_count(), 28);
        assert_eq!(g.count_class(OpClass::Multiplier), 16);
        assert_eq!(g.count_class(OpClass::Adder), 12);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn fir_generic_matches_fir16_at_16_taps() {
        let a = fir(16);
        let b = fir16();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.count_class(OpClass::Adder), b.count_class(OpClass::Adder));
        assert_eq!(a.depth().unwrap(), b.depth().unwrap());
    }

    #[test]
    fn fir_scales_with_taps() {
        for taps in [2usize, 4, 8, 32, 64] {
            let g = fir(taps);
            assert_eq!(g.count_class(OpClass::Multiplier), taps / 2);
            assert_eq!(g.count_class(OpClass::Adder), taps / 2 + (taps / 2 - 1));
            assert!(g.validate().is_ok(), "taps {taps}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fir_rejected() {
        let _ = fir(5);
    }

    #[test]
    fn butterfly8_shape() {
        let g = butterfly8();
        assert_eq!(g.count_class(OpClass::Multiplier), 12);
        assert_eq!(g.count_class(OpClass::Adder), 24);
        assert!(g.validate().is_ok());
        // Wide and shallow: 3 stages of mul -> add.
        assert_eq!(g.depth().unwrap(), 6);
    }

    #[test]
    fn iir_cascade_shape() {
        for n in [1usize, 2, 4] {
            let g = iir_cascade(n);
            assert_eq!(g.count_class(OpClass::Multiplier), 4 * n);
            assert_eq!(g.count_class(OpClass::Adder), 4 * n);
            assert!(g.validate().is_ok());
        }
        // Depth grows linearly with sections (serial chaining).
        assert!(iir_cascade(4).depth().unwrap() > iir_cascade(1).depth().unwrap() * 3);
    }

    #[test]
    fn all_benchmarks_include_the_full_roster() {
        let names: Vec<&str> = all_benchmarks().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "figure4a",
                "fir16",
                "ewf",
                "diffeq",
                "ar-lattice",
                "butterfly8",
                "iir4"
            ]
        );
    }

    #[test]
    fn all_benchmarks_are_valid_dags() {
        for (name, ctor) in all_benchmarks() {
            let g = ctor();
            assert!(g.validate().is_ok(), "{name} must be acyclic");
            assert!(!g.is_empty(), "{name} must be nonempty");
            assert_eq!(g.name(), name);
        }
    }
}
