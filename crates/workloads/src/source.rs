//! The open workload-ingestion API: the [`WorkloadSource`] trait, the
//! process-global source registry, and the workload spec grammar.
//!
//! A *workload spec* is a string of the form `scheme:rest`, resolved
//! through the registry exactly like the pass/strategy ids of
//! `rchls_core::flow`. Three sources ship built in:
//!
//! * `builtin:<name>` — the named paper benchmark (`builtin:fir16`); a
//!   spec with no scheme at all is shorthand for this (`fir16`);
//! * `random:<nodes>x<layers>[@<seed>]` — the seeded layered-DAG
//!   generator ([`crate::random_layered_dfg`]); the seed defaults to 0
//!   and is always echoed in the canonical spec so any randomized run is
//!   reproducible from its report alone;
//! * `file:<path>` — a file in the textual DFG format of
//!   [`rchls_dfg::parse_dfg`].
//!
//! Out-of-tree crates open new ingestion surfaces by implementing the
//! trait and calling [`register_workload_source`] once; every consumer of
//! specs (the `rchls` CLI's `--workload` flag, batch job files, the
//! engine, sweep drivers) can then name the new scheme.
//!
//! # Examples
//!
//! ```
//! let w = rchls_workloads::load_workload("random:24x4@7").unwrap();
//! assert_eq!(w.spec, "random:24x4@7");
//! assert_eq!(w.dfg.node_count(), 24);
//! // The seed is echoed even when the spec omits it.
//! assert_eq!(rchls_workloads::load_workload("random:24x4").unwrap().spec,
//!            "random:24x4@0");
//! // Bare names are builtin shorthand.
//! assert_eq!(rchls_workloads::load_workload("fir16").unwrap().spec,
//!            "builtin:fir16");
//! ```

use crate::random::{random_layered_dfg, RandomDfgConfig};
use rchls_dfg::Dfg;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// A resolved workload: the graph plus the canonical spec that rebuilds
/// it.
///
/// The canonical spec makes every implicit default explicit (e.g.
/// `random:30x6` canonicalizes to `random:30x6@0`), so echoing it in a
/// report is enough to reproduce the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The canonical spec string (`scheme:rest` with defaults spelled
    /// out).
    pub spec: String,
    /// The resolved data-flow graph.
    pub dfg: Dfg,
}

/// Resolving a workload spec failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// The offending spec (or spec fragment).
    pub spec: String,
    /// Why it was rejected.
    pub message: String,
}

impl WorkloadError {
    fn new(spec: impl Into<String>, message: impl Into<String>) -> WorkloadError {
        WorkloadError {
            spec: spec.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload {:?}: {}", self.spec, self.message)
    }
}

impl std::error::Error for WorkloadError {}

/// One workload-ingestion scheme, dispatched by the part of a spec before
/// the first `:`.
///
/// Implementations must be deterministic: the same spec must always
/// resolve to the same graph (the `file:` source is deterministic *given
/// the file's contents* — content changes are the caller's concern).
pub trait WorkloadSource: Send + Sync {
    /// The scheme this source owns (e.g. `"random"` for `random:...`
    /// specs). Must not contain `:`.
    fn scheme(&self) -> &str;

    /// A one-line human description for `rchls workloads`-style listings.
    fn description(&self) -> &str {
        ""
    }

    /// Known specs this source can name up front (the builtin source
    /// lists the benchmark roster; generative and file sources list
    /// nothing). Used by listings only.
    fn known_specs(&self) -> Vec<String> {
        Vec::new()
    }

    /// Resolves the part of a spec after the scheme into a workload.
    ///
    /// The returned [`Workload::spec`] must be canonical: parsing it
    /// again yields the same workload, with all defaults made explicit.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] describing why `rest` does not name a
    /// loadable workload.
    fn load(&self, rest: &str) -> Result<Workload, WorkloadError>;
}

/// The built-in paper benchmarks under `builtin:<name>`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuiltinSource;

impl WorkloadSource for BuiltinSource {
    fn scheme(&self) -> &str {
        "builtin"
    }

    fn description(&self) -> &str {
        "the named paper benchmark (builtin:fir16); bare names are shorthand"
    }

    fn known_specs(&self) -> Vec<String> {
        crate::all_benchmarks()
            .into_iter()
            .map(|(name, _)| format!("builtin:{name}"))
            .collect()
    }

    fn load(&self, rest: &str) -> Result<Workload, WorkloadError> {
        let (_, ctor) = crate::all_benchmarks()
            .into_iter()
            .find(|(name, _)| *name == rest)
            .ok_or_else(|| {
                let roster: Vec<&str> = crate::all_benchmarks().iter().map(|(n, _)| *n).collect();
                WorkloadError::new(
                    format!("builtin:{rest}"),
                    format!("unknown benchmark (available: {})", roster.join(", ")),
                )
            })?;
        Ok(Workload {
            spec: format!("builtin:{rest}"),
            dfg: ctor(),
        })
    }
}

/// The seeded layered-DAG generator under
/// `random:<nodes>x<layers>[@<seed>]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSource;

impl WorkloadSource for RandomSource {
    fn scheme(&self) -> &str {
        "random"
    }

    fn description(&self) -> &str {
        "seeded layered DAG: random:<nodes>x<layers>[@<seed>] (seed defaults to 0)"
    }

    fn load(&self, rest: &str) -> Result<Workload, WorkloadError> {
        let bad = |reason: &str| {
            WorkloadError::new(
                format!("random:{rest}"),
                format!(
                    "{reason} (expected random:<nodes>x<layers>[@<seed>], e.g. random:30x6@42)"
                ),
            )
        };
        let (shape, seed) = match rest.split_once('@') {
            Some((shape, seed)) => (
                shape,
                seed.parse::<u64>()
                    .map_err(|_| bad("seed is not an unsigned integer"))?,
            ),
            None => (rest, 0),
        };
        let (nodes, layers) = shape.split_once('x').ok_or_else(|| bad("missing `x`"))?;
        let nodes: usize = nodes
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| bad("node count must be a positive integer"))?;
        let layers: usize = layers
            .parse()
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| bad("layer count must be a positive integer"))?;
        Ok(Workload {
            spec: format!("random:{nodes}x{layers}@{seed}"),
            dfg: random_layered_dfg(&RandomDfgConfig {
                nodes,
                layers,
                seed,
                ..RandomDfgConfig::default()
            }),
        })
    }
}

/// Files in the textual DFG format under `file:<path>`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileSource;

impl WorkloadSource for FileSource {
    fn scheme(&self) -> &str {
        "file"
    }

    fn description(&self) -> &str {
        "a file in the textual DFG format (graph g / op x add / x -> y lines)"
    }

    fn load(&self, rest: &str) -> Result<Workload, WorkloadError> {
        let spec = format!("file:{rest}");
        let text = std::fs::read_to_string(rest)
            .map_err(|e| WorkloadError::new(spec.clone(), format!("cannot read file: {e}")))?;
        let dfg = rchls_dfg::parse_dfg(&text)
            .map_err(|e| WorkloadError::new(spec.clone(), e.to_string()))?;
        Ok(Workload { spec, dfg })
    }
}

/// One registry entry: a scheme and its source.
type SourceEntry = (String, Arc<dyn WorkloadSource>);

/// The registry: scheme-keyed sources, built-ins first, then
/// registration order (listings are deterministic).
fn sources() -> &'static RwLock<Vec<SourceEntry>> {
    static SOURCES: OnceLock<RwLock<Vec<SourceEntry>>> = OnceLock::new();
    SOURCES.get_or_init(|| {
        let entry = |s: Arc<dyn WorkloadSource>| (s.scheme().to_owned(), s);
        RwLock::new(vec![
            entry(Arc::new(BuiltinSource)),
            entry(Arc::new(RandomSource)),
            entry(Arc::new(FileSource)),
        ])
    })
}

/// Looks up a workload source by scheme.
#[must_use]
pub fn workload_source(scheme: &str) -> Option<Arc<dyn WorkloadSource>> {
    sources()
        .read()
        .expect("workload registry lock")
        .iter()
        .find(|(k, _)| k == scheme)
        .map(|(_, v)| Arc::clone(v))
}

/// Registered schemes, built-ins first then registration order.
#[must_use]
pub fn workload_source_schemes() -> Vec<String> {
    sources()
        .read()
        .expect("workload registry lock")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

/// Registers an out-of-tree workload source under its
/// [`WorkloadSource::scheme`].
///
/// # Errors
///
/// Returns a [`WorkloadError`] when the scheme is already taken
/// (built-ins cannot be replaced) or contains `:`.
pub fn register_workload_source(source: Arc<dyn WorkloadSource>) -> Result<(), WorkloadError> {
    let scheme = source.scheme().to_owned();
    if scheme.is_empty() || scheme.contains(':') {
        return Err(WorkloadError::new(
            scheme,
            "scheme must be nonempty and must not contain `:`",
        ));
    }
    let mut entries = sources().write().expect("workload registry lock");
    if entries.iter().any(|(k, _)| *k == scheme) {
        return Err(WorkloadError::new(
            scheme.clone(),
            format!("a workload source with scheme {scheme:?} is already registered"),
        ));
    }
    entries.push((scheme, source));
    Ok(())
}

/// Resolves a workload spec (`scheme:rest`, or a bare builtin name)
/// through the registry.
///
/// # Errors
///
/// Returns a [`WorkloadError`] when the scheme is unregistered or the
/// source rejects the spec.
pub fn load_workload(spec: &str) -> Result<Workload, WorkloadError> {
    let (scheme, rest) = match spec.split_once(':') {
        Some((scheme, rest)) => (scheme, rest),
        // A bare name is builtin shorthand: `fir16` == `builtin:fir16`.
        None => ("builtin", spec),
    };
    let source = workload_source(scheme).ok_or_else(|| {
        WorkloadError::new(
            spec,
            format!(
                "unknown workload scheme {scheme:?} (registered: {})",
                workload_source_schemes().join(", ")
            ),
        )
    })?;
    source.load(rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_resolve_to_the_same_graphs_as_the_constructors() {
        for (name, ctor) in crate::all_benchmarks() {
            let w = load_workload(&format!("builtin:{name}")).unwrap();
            assert_eq!(w.dfg, ctor(), "{name}");
            assert_eq!(w.spec, format!("builtin:{name}"));
            // Bare-name shorthand hits the same source.
            assert_eq!(load_workload(name).unwrap(), w);
        }
    }

    #[test]
    fn random_specs_are_seeded_and_canonicalized() {
        let w = load_workload("random:30x6@42").unwrap();
        assert_eq!(w.spec, "random:30x6@42");
        assert_eq!(w.dfg.node_count(), 30);
        assert!(w.dfg.depth().unwrap() <= 6);
        // Omitted seed defaults to 0 and is echoed.
        let d = load_workload("random:30x6").unwrap();
        assert_eq!(d.spec, "random:30x6@0");
        assert_eq!(d, load_workload("random:30x6@0").unwrap());
        // Different seeds give different graphs.
        assert_ne!(w.dfg, d.dfg);
        // The canonical spec round-trips to the identical workload.
        assert_eq!(load_workload(&w.spec).unwrap(), w);
    }

    #[test]
    fn malformed_random_specs_are_rejected_with_the_grammar() {
        for bad in [
            "random:30",
            "random:x6",
            "random:30x",
            "random:30x6@x",
            "random:0x6",
        ] {
            let e = load_workload(bad).unwrap_err();
            assert!(e.message.contains("random:<nodes>x<layers>"), "{bad}: {e}");
        }
    }

    #[test]
    fn file_specs_parse_and_missing_files_report() {
        let dir = std::env::temp_dir().join("rchls-workload-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.dfg");
        std::fs::write(&path, "graph tiny\nop a add\nop b mul\na -> b\n").unwrap();
        let spec = format!("file:{}", path.display());
        let w = load_workload(&spec).unwrap();
        assert_eq!(w.spec, spec);
        assert_eq!(w.dfg.name(), "tiny");
        assert_eq!(w.dfg.node_count(), 2);
        let e = load_workload("file:/nonexistent/x.dfg").unwrap_err();
        assert!(e.message.contains("cannot read"));
        // The display of every file-spec failure carries the offending
        // path (via the spec) so batch documents stay actionable.
        assert!(e.to_string().contains("/nonexistent/x.dfg"), "{e}");
    }

    #[test]
    fn malformed_file_specs_carry_path_and_line() {
        let dir = std::env::temp_dir().join("rchls-workload-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        // A per-line problem reports the path and the offending line.
        let bad = dir.join("bad-line.dfg");
        std::fs::write(&bad, "graph g\nop a add\na -> ghost\n").unwrap();
        let e = load_workload(&format!("file:{}", bad.display())).unwrap_err();
        let shown = e.to_string();
        assert!(shown.contains("bad-line.dfg"), "{shown}");
        assert!(shown.contains("line 3"), "{shown}");
        assert!(shown.contains("ghost"), "{shown}");
        // A whole-graph problem (cycle) reports the path and the op's
        // label — no bogus `line 0`, no internal node id.
        let cyc = dir.join("cycle.dfg");
        std::fs::write(&cyc, "graph g\nop a add\nop b add\na -> b\nb -> a\n").unwrap();
        let e = load_workload(&format!("file:{}", cyc.display())).unwrap_err();
        let shown = e.to_string();
        assert!(shown.contains("cycle.dfg"), "{shown}");
        assert!(shown.contains("cycle detected through op \"a\""), "{shown}");
        assert!(!shown.contains("line 0"), "{shown}");
    }

    #[test]
    fn unknown_schemes_list_the_registered_ones() {
        let e = load_workload("warp:9").unwrap_err();
        assert!(e.message.contains("builtin"));
        assert!(e.message.contains("random"));
        assert!(e.message.contains("file"));
        // A bare name that is not a benchmark reads as builtin shorthand.
        let e = load_workload("nope").unwrap_err();
        assert!(e.message.contains("unknown benchmark"));
    }

    #[test]
    fn registry_lists_builtins_first_and_rejects_duplicates() {
        let schemes = workload_source_schemes();
        assert_eq!(&schemes[..3], &["builtin", "random", "file"]);
        assert!(workload_source("builtin").is_some());
        assert!(workload_source("nope").is_none());
        let err = register_workload_source(Arc::new(BuiltinSource)).unwrap_err();
        assert!(err.message.contains("already registered"));
    }

    #[test]
    fn out_of_tree_sources_join_the_namespace() {
        #[derive(Debug)]
        struct Chain;
        impl WorkloadSource for Chain {
            fn scheme(&self) -> &str {
                "test-chain"
            }
            fn load(&self, rest: &str) -> Result<Workload, WorkloadError> {
                let n: usize = rest.parse().map_err(|_| {
                    WorkloadError::new(format!("test-chain:{rest}"), "not a number")
                })?;
                let mut b = rchls_dfg::DfgBuilder::new(format!("chain{n}"));
                for i in 0..n {
                    b = b.op(&format!("c{i}"), rchls_dfg::OpKind::Add);
                    if i > 0 {
                        b = b.dep(&format!("c{}", i - 1), &format!("c{i}"));
                    }
                }
                Ok(Workload {
                    spec: format!("test-chain:{n}"),
                    dfg: b.build().expect("chain is a DAG"),
                })
            }
        }
        register_workload_source(Arc::new(Chain)).unwrap();
        let w = load_workload("test-chain:5").unwrap();
        assert_eq!(w.dfg.node_count(), 5);
        assert!(workload_source_schemes().contains(&"test-chain".to_owned()));
        assert!(register_workload_source(Arc::new(Chain)).is_err());
        let bad = register_workload_source(Arc::new(BadScheme)).unwrap_err();
        assert!(bad.message.contains("must not contain"));
    }

    #[derive(Debug)]
    struct BadScheme;
    impl WorkloadSource for BadScheme {
        fn scheme(&self) -> &str {
            "has:colon"
        }
        fn load(&self, _rest: &str) -> Result<Workload, WorkloadError> {
            unreachable!()
        }
    }
}
