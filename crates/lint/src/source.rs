//! First-party source discovery and the per-file analysis input.
//!
//! The scan covers `.rs` files under a `src/` tree of the workspace's
//! first-party packages (the root umbrella crate and everything under
//! `crates/`). Test suites, benches, examples, and fixtures live
//! outside `src/` and are deliberately out of scope: the invariants
//! guard *shipped* code paths. Inline `#[cfg(test)]` modules and
//! `#[test]` functions inside `src/` are masked token-by-token for the
//! same reason.

use crate::config::LintConfig;
use crate::lexer::{self, Tok};
use crate::pragma::{self, Pragma, PragmaError};
use std::fs;
use std::path::{Path, PathBuf};

/// One analyzed source file: the rule engine's entire input.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// The owning package name (e.g. `rchls-core`).
    pub crate_name: String,
    /// `true` for binary targets (`src/bin/*`, `src/main.rs`); some
    /// rules (printing) only bind libraries.
    pub is_bin: bool,
    /// The raw source lines, for finding snippets.
    pub lines: Vec<String>,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// `test_mask[i]` marks tokens inside `#[cfg(test)]` / `#[test]`
    /// items, which every rule skips.
    pub test_mask: Vec<bool>,
    /// Suppression pragmas found in plain comments.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas (reported as findings, never suppressing).
    pub pragma_errors: Vec<PragmaError>,
}

impl SourceFile {
    /// Lexes and masks one file's source text.
    #[must_use]
    pub fn parse(path: String, crate_name: String, is_bin: bool, source: &str) -> SourceFile {
        let lexed = lexer::lex(source);
        let (pragmas, pragma_errors) = pragma::scan(&lexed.comments);
        let test_mask = test_mask(&lexed.toks);
        SourceFile {
            path,
            crate_name,
            is_bin,
            lines: source.lines().map(str::to_owned).collect(),
            toks: lexed.toks,
            test_mask,
            pragmas,
            pragma_errors,
        }
    }

    /// The source line at 1-based `line`, trimmed, for snippets.
    #[must_use]
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }

    /// `true` when token `i` is inside a test-only item.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// `true` when `toks[i..]` spells `first::second` (the `::` arrives
    /// as two `:` punct tokens).
    #[must_use]
    pub fn is_path2(&self, i: usize, first: &str, second: &str) -> bool {
        self.toks[i].is_ident(first)
            && self.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && self.toks.get(i + 3).is_some_and(|t| t.is_ident(second))
    }
}

/// Marks tokens belonging to `#[test]` / `#[cfg(test)]` items.
///
/// Attribute arguments are searched for the *identifier* `test`
/// (covering `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, unix))]`); a
/// string like `"test"` in an attribute is not an identifier and does
/// not mask. The masked region runs to the end of the annotated item:
/// the matching `}` of its first brace block, or the first `;` before
/// any brace.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(toks, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        let start = i;
        let mut j = attr_end;
        // Any further attributes belong to the same item.
        while j < toks.len()
            && toks[j].is_punct('#')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = scan_attribute(toks, j + 1).0;
        }
        let end = scan_item(toks, j);
        for flag in &mut mask[start..end] {
            *flag = true;
        }
        i = end;
    }
    mask
}

/// Scans a `[...]` group starting at its `[`; returns (index past the
/// closing `]`, whether the group contains the identifier `test`).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, is_test);
            }
        } else if t.is_ident("test") {
            is_test = true;
        }
        i += 1;
    }
    (i, is_test)
}

/// Scans one item starting at `from`; returns the index just past it.
fn scan_item(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Walks the configured include roots and loads every first-party
/// source file, sorted by path for deterministic output.
///
/// # Errors
///
/// Returns a message when a directory or file cannot be read.
pub fn discover(root: &Path, config: &LintConfig) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for include in &config.include {
        let dir = root.join(include);
        if dir.is_dir() {
            walk(&dir, &mut paths).map_err(|e| format!("scanning {}: {e}", dir.display()))?;
        }
    }
    let mut rel_paths: Vec<String> = paths
        .iter()
        .filter_map(|p| relative(root, p))
        .filter(|rel| {
            rel.ends_with(".rs")
                && rel.split('/').any(|seg| seg == "src")
                && !config.exclude.iter().any(|ex| rel.starts_with(ex.as_str()))
        })
        .collect();
    rel_paths.sort();
    rel_paths.dedup();
    let mut files = Vec::new();
    for rel in rel_paths {
        let absolute = root.join(&rel);
        let source = fs::read_to_string(&absolute)
            .map_err(|e| format!("reading {}: {e}", absolute.display()))?;
        let crate_name = crate_name_for(root, &rel);
        let is_bin = rel.contains("/bin/") || rel.ends_with("/main.rs");
        files.push(SourceFile::parse(rel, crate_name, is_bin, &source));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    Some(parts.join("/"))
}

/// Resolves the package name owning a repo-relative source path: read
/// from the crate's manifest, falling back to the directory convention.
fn crate_name_for(root: &Path, rel: &str) -> String {
    let segments: Vec<&str> = rel.split('/').collect();
    let (manifest, fallback) = if segments.first() == Some(&"crates") && segments.len() > 1 {
        (
            root.join("crates").join(segments[1]).join("Cargo.toml"),
            format!("rchls-{}", segments[1]),
        )
    } else {
        (root.join("Cargo.toml"), "rc-hls".to_owned())
    };
    manifest_package_name(&manifest).unwrap_or(fallback)
}

fn manifest_package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(value) = line.strip_prefix("name") {
            let value = value.trim_start().strip_prefix('=')?.trim();
            return Some(value.trim_matches('"').to_owned());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), "rchls-x".into(), false, src)
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let f = file(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn also_real() {}\n",
        );
        let unwrap_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("token present");
        assert!(f.in_test(unwrap_at));
        let real_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("also_real"))
            .expect("token present");
        assert!(!f.in_test(real_at));
    }

    #[test]
    fn test_attribute_masks_one_fn() {
        let f = file("#[test]\nfn t() { a.unwrap(); }\nfn real() { b.other(); }\n");
        let unwrap_at = f.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let other_at = f.toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(f.in_test(unwrap_at));
        assert!(!f.in_test(other_at));
    }

    #[test]
    fn cfg_feature_string_test_does_not_mask() {
        let f = file("#[cfg(feature = \"test\")]\nfn shipped() { c.call(); }\n");
        let call_at = f.toks.iter().position(|t| t.is_ident("call")).unwrap();
        assert!(!f.in_test(call_at));
    }
}
