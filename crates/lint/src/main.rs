//! The `rchls-lint` binary: scan the workspace, print findings, exit
//! non-zero unless lint-clean.
//!
//! ```text
//! rchls-lint [--root DIR] [--config FILE] [--format text|json] [--out FILE]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use rchls_lint::config::LintConfig;
use rchls_lint::report::Report;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: rchls-lint [--root DIR] [--config FILE] [--format text|json] [--out FILE]

Scans first-party sources for determinism & serve-safety invariant
violations (see docs/lints.md for the rule catalog). Exit code 0 when
clean, 1 on findings, 2 on usage or I/O errors.";

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--format" => match value("--format")?.as_str() {
                "json" => args.json = true,
                "text" => args.json = false,
                other => return Err(format!("unknown format {other:?} (text, json)\n\n{USAGE}")),
            },
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(Report, Args), String> {
    let args = parse_args()?;
    let report = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let config =
                LintConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            rchls_lint::analyze_workspace(&args.root, &config)?
        }
        None => rchls_lint::run(&args.root)?,
    };
    Ok((report, args))
}

fn main() -> ExitCode {
    let (report, args) = match run() {
        Ok(done) => done,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let rendered = if args.json {
        report.render_json()
    } else {
        report.render_text()
    };
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
        // Keep the terminal summary even when the document goes to disk.
        if args.json {
            print!("{}", report.render_text());
        }
    } else {
        print!("{rendered}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
