//! `unordered-iter`: no unordered iteration on deterministic paths.

use crate::report::Finding;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Methods that enumerate a hash container in arbitrary order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Order-restoring identifiers: a flagged site is fine when the same or
/// the next statement funnels the items through one of these.
const ORDERING: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Flags iteration over `HashMap` / `HashSet` in the crates on the
/// deterministic-output path (`lint.toml` scopes the rule to them).
///
/// Detection is lexical, in two layers:
///
/// 1. names bound to a hash container in this file (`x: HashMap<…>`,
///    `x = HashMap::new()`, struct fields, including through wrappers
///    like `Mutex<HashMap<…>>`) flag any [`ITER_METHODS`] call and any
///    `for … in &name` loop;
/// 2. `.keys()` / `.values()` / `.values_mut()` / `.into_keys()` /
///    `.into_values()` on *any* receiver are flagged — in these crates
///    they overwhelmingly mean a map, and aliases (`let t =
///    m.read()…`) would otherwise hide layer 1.
///
/// A site is auto-accepted when the items are visibly re-ordered
/// within the same or the immediately following statement (`sort*`, a
/// BTree collect); anything subtler must carry a pragma explaining why
/// its order cannot reach an output byte.
pub struct UnorderedIter;

impl Rule for UnorderedIter {
    fn id(&self) -> &'static str {
        "unordered-iter"
    }

    fn teach(&self) -> &'static str {
        "HashMap/HashSet iteration order is arbitrary; on the deterministic-output path \
         sort the items (or use a BTree container) before their order can matter"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let hash_names = hash_bindings(file);
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            // Layer 2: map-enumerating method names on any receiver.
            let map_method = ["keys", "into_keys", "values", "values_mut", "into_values"];
            let is_method_call = |j: usize, names: &[&str]| {
                j > 0
                    && toks[j - 1].is_punct('.')
                    && names.iter().any(|m| toks[j].is_ident(m))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            };
            if is_method_call(i, &map_method) && !reordered_nearby(file, i) {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "`.{}()` enumerates a map in arbitrary order on the \
                         deterministic-output path; sort the items before their order \
                         can reach an output",
                        toks[i].text
                    ),
                ));
                continue;
            }
            // Layer 1: iteration methods on names known to be hash
            // containers in this file.
            if is_method_call(i, ITER_METHODS)
                && i >= 2
                && toks[i - 2].kind == crate::lexer::TokKind::Ident
                && hash_names.contains(toks[i - 2].text.as_str())
                && !reordered_nearby(file, i)
            {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "`{}.{}()` iterates a hash container in arbitrary order; sort \
                         first or switch to a BTree container",
                        toks[i - 2].text,
                        toks[i].text
                    ),
                ));
                continue;
            }
            // Layer 1b: `for x in &name` / `for x in name`.
            if toks[i].is_ident("in") {
                let mut j = i + 1;
                while toks
                    .get(j)
                    .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
                {
                    j += 1;
                }
                let direct_loop = toks
                    .get(j)
                    .is_some_and(|t| hash_names.contains(t.text.as_str()))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('{'));
                if direct_loop && !reordered_nearby(file, j) {
                    out.push(finding(
                        self.id(),
                        file,
                        j,
                        format!(
                            "`for … in {}` iterates a hash container in arbitrary order; \
                             sort first or switch to a BTree container",
                            toks[j].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Names bound to `HashMap` / `HashSet` anywhere in this file: type
/// ascriptions (possibly through wrapper generics) and constructor
/// assignments.
fn hash_bindings(file: &SourceFile) -> BTreeSet<&str> {
    let toks = &file.toks;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
            j -= 3; // the path segment before `::`
        }
        // Skip back over reference sigils (`x: &mut HashMap<…>`).
        while j >= 1
            && (toks[j - 1].is_punct('&')
                || toks[j - 1].is_ident("mut")
                || toks[j - 1].kind == crate::lexer::TokKind::Lifetime)
        {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        match &toks[j - 1] {
            // `name: HashMap<…>` or `name: Mutex<HashMap<…>>` (walk back
            // over `Wrapper<` layers to the ascribed name).
            t if t.is_punct(':') || t.is_punct('<') => {
                let mut k = j - 1;
                while k >= 2 && toks[k].is_punct('<') {
                    k -= 1; // the wrapper type name
                    if !(toks[k].kind == crate::lexer::TokKind::Ident && k >= 1) {
                        break;
                    }
                    k -= 1; // whatever precedes it (`:` or another `<`)
                }
                if toks[k].is_punct(':')
                    && k >= 1
                    && toks[k - 1].kind == crate::lexer::TokKind::Ident
                {
                    names.insert(toks[k - 1].text.as_str());
                }
            }
            // `name = HashMap::new()`.
            t if t.is_punct('=') && j >= 2 && toks[j - 2].kind == crate::lexer::TokKind::Ident => {
                names.insert(toks[j - 2].text.as_str());
            }
            _ => {}
        }
    }
    names
}

/// `true` when the statement containing token `i` — or the one after
/// it — visibly restores an order (`sort*` call, BTree collect).
fn reordered_nearby(file: &SourceFile, i: usize) -> bool {
    let toks = &file.toks;
    let mut semis = 0;
    for t in toks.iter().skip(i) {
        if t.is_punct(';') {
            semis += 1;
            if semis >= 2 {
                break;
            }
            continue;
        }
        if t.kind == crate::lexer::TokKind::Ident
            && (t.text.starts_with("sort") || ORDERING.iter().any(|o| t.text == *o))
        {
            return true;
        }
    }
    false
}
