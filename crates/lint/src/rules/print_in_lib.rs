//! `print-in-lib`: library crates do not own stdout.

use crate::report::Finding;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

/// Printing macros that bypass structured output.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Flags `println!` / `eprintln!` / `dbg!` in library targets.
///
/// The CLI and the bench binaries own the terminal; a library that
/// prints corrupts machine-readable output (`--format json` documents,
/// `BENCH_engine.json`, the serve wire protocol) and is invisible to
/// the telemetry pipeline. Libraries return data or record metrics;
/// binaries print. (`rchls-cli`'s command layer is the designated
/// printer and is exempted in `lint.toml`.)
pub struct PrintInLib;

impl Rule for PrintInLib {
    fn id(&self) -> &'static str {
        "print-in-lib"
    }

    fn teach(&self) -> &'static str {
        "libraries return data or record telemetry; printing belongs to binaries, and \
         stray output corrupts machine-readable documents"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.is_bin {
            return;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let is_macro = PRINT_MACROS.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if is_macro {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "`{}!` in a library target writes to the terminal behind the \
                         caller's back; return the data or record a metric instead",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}
