//! `float-order`: float comparisons must be total.

use crate::report::Finding;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

/// Flags `partial_cmp` calls and float-literal `==` / `!=` comparisons.
///
/// `partial_cmp` on floats returns `None` for NaN; every comparator
/// built on it (`sort_by`, `min_by`, `max_by`) either panics via
/// `.unwrap()` or silently reorders — both killed reproducibility
/// before PR 2 replaced every site with `total_cmp`. This rule keeps
/// them out. Float `==` against a literal is flagged for the same
/// reason: it is not a total relation (NaN != NaN) and one rounding
/// step away from a heisenbug.
pub struct FloatOrder;

impl Rule for FloatOrder {
    fn id(&self) -> &'static str {
        "float-order"
    }

    fn teach(&self) -> &'static str {
        "float ordering must use total_cmp: partial_cmp and float == are not total \
         relations, and NaN silently breaks comparator contracts"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            if toks[i].is_ident("partial_cmp") {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "`partial_cmp` is not total over floats (NaN maps to `None`); order \
                     floats with `total_cmp`"
                        .to_owned(),
                ));
            }
            // `== 1.5` / `1.5 ==` / `!= 1.5` / `1.5 !=`.
            let eq_op = (toks[i].is_punct('=') || toks[i].is_punct('!'))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct('='));
            if eq_op {
                let lhs_float = i > 0 && toks[i - 1].is_float_literal();
                let rhs_float = toks
                    .get(i + 2)
                    .is_some_and(crate::lexer::Tok::is_float_literal);
                if lhs_float || rhs_float {
                    out.push(finding(
                        self.id(),
                        file,
                        i,
                        "float equality is not a total relation (NaN != NaN) and is \
                         rounding-fragile; compare with `total_cmp` or an explicit \
                         tolerance"
                            .to_owned(),
                    ));
                }
            }
        }
    }
}
