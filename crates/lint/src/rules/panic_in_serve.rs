//! `panic-in-serve`: request-handling paths answer, never abort.

use crate::report::Finding;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

/// Panicking macros a serve path must not reach for.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Flags `.unwrap()` / `.expect(…)` and panicking macros in the serve
/// crate (`lint.toml` scopes the rule to it).
///
/// The daemon's contract is one structured response per request. A
/// panic in a handling path either kills a reader thread (the client
/// hangs up confused) or — worse — fires while a shared `Mutex` is
/// held, poisoning it so every *later* `.lock().expect(…)` aborts the
/// whole daemon. `.lock().expect(…)` is exactly such a bomb: recover
/// with `lock_unpoisoned` (which counts `serve.lock_poisoned`) or
/// return a structured `internal` error instead.
pub struct PanicInServe;

impl Rule for PanicInServe {
    fn id(&self) -> &'static str {
        "panic-in-serve"
    }

    fn teach(&self) -> &'static str {
        "serve paths must answer with structured errors, never panic: an unwrap/expect \
         can poison shared locks and take the whole daemon down"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let method_call = |name: &str| {
                toks[i].is_ident(name)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            };
            if method_call("unwrap") || method_call("expect") {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "`.{}(…)` can panic in a request-handling path; return a \
                         structured error (`protocol::error_line`) or recover \
                         (`lock_unpoisoned`) instead",
                        toks[i].text
                    ),
                ));
                continue;
            }
            let is_macro = PANIC_MACROS.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if is_macro {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "`{}!` aborts the worker; serve paths must answer every request \
                         with a structured response",
                        toks[i].text
                    ),
                ));
            }
        }
    }
}
