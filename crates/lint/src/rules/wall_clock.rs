//! `wall-clock`: no wall-clock reads on deterministic paths.

use crate::report::Finding;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

/// Flags `Instant::now()` and `SystemTime::now()`.
///
/// Byte-identical output at any `--jobs` (and across cache states)
/// requires that no deterministic artifact ever observes real time.
/// Timing belongs to `rchls-telemetry` spans (exempted in `lint.toml`)
/// and the bench/serve sites that justify themselves with a pragma;
/// everything else must take time as data, not read the clock.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "wall-clock"
    }

    fn teach(&self) -> &'static str {
        "wall-clock reads break byte-identical reproducibility; take time from telemetry \
         spans or pass it in as data"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for i in 0..file.toks.len() {
            if file.in_test(i) {
                continue;
            }
            for clock in ["Instant", "SystemTime"] {
                if file.is_path2(i, clock, "now") {
                    out.push(finding(
                        self.id(),
                        file,
                        i,
                        format!(
                            "`{clock}::now()` reads the wall clock; deterministic paths must \
                             not observe real time (scrub it, span it, or justify the site \
                             with a pragma)"
                        ),
                    ));
                }
            }
        }
    }
}
