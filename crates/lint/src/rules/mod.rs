//! The rule catalog.
//!
//! Each rule has a stable kebab-case id (the pragma vocabulary), a
//! one-line teaching rationale, and a token-stream check producing
//! spanned findings. Rules are scoped per crate/path by `lint.toml`
//! (see [`crate::config`]); single sites are suppressed by inline
//! pragmas (see [`crate::pragma`]).

mod ad_hoc_thread;
mod float_order;
mod panic_in_serve;
mod print_in_lib;
mod unordered_iter;
mod wall_clock;

use crate::report::Finding;
use crate::source::SourceFile;

/// One invariant check.
pub trait Rule {
    /// Stable kebab-case id, used in pragmas and `lint.toml`.
    fn id(&self) -> &'static str;

    /// One-line rationale: which invariant the rule guards and why.
    fn teach(&self) -> &'static str;

    /// Scans one file, appending findings. The caller applies crate and
    /// path scoping, pragma suppression, and ordering.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// Every shipped rule, in catalog order.
#[must_use]
pub fn catalog() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wall_clock::WallClock),
        Box::new(float_order::FloatOrder),
        Box::new(unordered_iter::UnorderedIter),
        Box::new(panic_in_serve::PanicInServe),
        Box::new(ad_hoc_thread::AdHocThread),
        Box::new(print_in_lib::PrintInLib),
    ]
}

/// Builds a finding at token `i` of `file`.
pub(crate) fn finding(rule: &'static str, file: &SourceFile, i: usize, message: String) -> Finding {
    let tok = &file.toks[i];
    Finding {
        rule,
        path: file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: file.snippet(tok.line),
    }
}
