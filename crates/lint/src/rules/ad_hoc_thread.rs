//! `ad-hoc-thread`: concurrency stays in the executor.

use crate::report::Finding;
use crate::rules::{finding, Rule};
use crate::source::SourceFile;

/// Flags `thread::spawn` outside the blessed concurrency owners (the
/// engine executor, the serve daemon, telemetry — scoped by
/// `lint.toml`).
///
/// Determinism at any `--jobs` holds because all parallelism funnels
/// through `SweepExecutor` (deterministic result ordering) and the
/// serve worker pool (panic-isolated, admission-controlled). A stray
/// `thread::spawn` is unaccounted concurrency: no result ordering, no
/// `catch_unwind`, no queue-depth bookkeeping.
pub struct AdHocThread;

impl Rule for AdHocThread {
    fn id(&self) -> &'static str {
        "ad-hoc-thread"
    }

    fn teach(&self) -> &'static str {
        "all parallelism funnels through the executor or the serve worker pool; ad-hoc \
         threads escape deterministic ordering and panic isolation"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for i in 0..file.toks.len() {
            if file.in_test(i) {
                continue;
            }
            if file.is_path2(i, "thread", "spawn") {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "`thread::spawn` outside the executor/serve/telemetry escapes \
                     deterministic result ordering and panic isolation; run the work \
                     through `SweepExecutor` instead"
                        .to_owned(),
                ));
            }
        }
    }
}
