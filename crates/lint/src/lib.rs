//! `rchls-lint` — the workspace invariant analyzer.
//!
//! Every PR since the seed stakes this repo's credibility on invariants
//! the golden tests can only catch *after* the fact: byte-identical
//! output at any `--jobs`, `total_cmp`-only float ordering, no
//! wall-clock reads on deterministic paths, and one structured response
//! per request in the daemon. This crate checks them at the source
//! level, on every commit, before the code runs.
//!
//! Because the container builds offline (no `syn`, no `dylint`), the
//! analyzer is a hand-rolled Rust [`lexer`] plus a token-stream rule
//! engine — the same shim discipline as `vendor/`. The [`rules`]
//! catalog ships six checks, each with a stable id, a teaching message,
//! and a span; `docs/lints.md` is the user-facing catalog.
//!
//! Suppression is explicit and reviewable, never silent: an inline
//! pragma with a mandatory reason (see [`pragma`]) for single sites, or
//! the committed `lint.toml` (see [`config`]) for whole crates/paths.
//!
//! ```
//! use rchls_lint::{config::LintConfig, source::SourceFile};
//!
//! let config = LintConfig::default();
//! let file = SourceFile::parse(
//!     "crates/x/src/lib.rs".into(),
//!     "rchls-x".into(),
//!     false,
//!     "fn f() { let t = std::time::Instant::now(); }",
//! );
//! let report = rchls_lint::analyze_files(vec![file], &config);
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule, "wall-clock");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod source;

use config::LintConfig;
use report::{Finding, Report, Suppressed};
use source::SourceFile;
use std::path::Path;

/// Scans the workspace at `root` under `config`.
///
/// # Errors
///
/// Returns a message when sources cannot be read.
pub fn analyze_workspace(root: &Path, config: &LintConfig) -> Result<Report, String> {
    let files = source::discover(root, config)?;
    Ok(analyze_files(files, config))
}

/// Runs the rule catalog over already-loaded files (the test seam: the
/// self-test feeds seeded violations through exactly this path).
#[must_use]
pub fn analyze_files(files: Vec<SourceFile>, config: &LintConfig) -> Report {
    let catalog = rules::catalog();
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed: Vec<Suppressed> = Vec::new();
    for file in &files {
        // Malformed pragmas are findings themselves — a suppression
        // without a reason must not silently hold.
        for err in &file.pragma_errors {
            findings.push(Finding {
                rule: pragma::BAD_PRAGMA,
                path: file.path.clone(),
                line: err.line,
                col: 1,
                message: err.message.clone(),
                snippet: file.snippet(err.line),
            });
        }
        let mut raw: Vec<Finding> = Vec::new();
        for rule in &catalog {
            if config.rule(rule.id()).applies(&file.crate_name, &file.path) {
                rule.check(file, &mut raw);
            }
        }
        for finding in raw {
            // A pragma suppresses its own line and the next one, so the
            // annotation sits on or directly above the violating line.
            let pragma = file.pragmas.iter().find(|p| {
                p.rule == finding.rule && (p.line == finding.line || p.line + 1 == finding.line)
            });
            match pragma {
                Some(p) => suppressed.push(Suppressed {
                    rule: p.rule.clone(),
                    path: file.path.clone(),
                    line: finding.line,
                    reason: p.reason.clone(),
                }),
                None => findings.push(finding),
            }
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    suppressed.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Report {
        files_scanned: files.len(),
        findings,
        suppressed,
    }
}

/// Loads `lint.toml` from `root` (falling back to defaults when the
/// file is absent) and scans the workspace.
///
/// # Errors
///
/// Returns a message on unreadable sources or a malformed config.
pub fn run(root: &Path) -> Result<Report, String> {
    let config_path = root.join("lint.toml");
    let config = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        LintConfig::parse(&text).map_err(|e| format!("lint.toml: {e}"))?
    } else {
        LintConfig::default()
    };
    analyze_workspace(root, &config)
}
