//! Suppression pragmas: `// rchls-lint: allow(<rule>, reason = "…")`.
//!
//! A pragma is read from *plain* comment text only: the lexer never
//! surfaces string-literal contents as comments (so a pragma spelled
//! inside a string does not count), and doc comments (`///`, `//!`,
//! `/** */`, `/*! */`) are rendered documentation where the syntax is
//! legitimately quoted, so they are skipped too. A pragma suppresses
//! findings of the named rule on its own line and on the following
//! line — annotate the violating line itself, or the line directly
//! above it.
//!
//! The `reason` is mandatory: a pragma without one suppresses nothing
//! and is itself reported (rule id [`BAD_PRAGMA`]), so every silence in
//! the workspace carries its justification in source.

use crate::lexer::Comment;

/// The marker that opens a pragma inside a comment.
pub const MARKER: &str = "rchls-lint:";

/// The rule id reported for malformed pragmas.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// One parsed suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the pragma's comment starts on.
    pub line: u32,
}

/// A pragma that does not parse, reported as a finding.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// What is wrong, in teaching terms.
    pub message: String,
    /// 1-based line of the offending comment.
    pub line: u32,
}

/// Scans comments for pragmas. Malformed ones (missing reason, bad
/// syntax) come back as errors, never as silent suppressions.
#[must_use]
pub fn scan(comments: &[Comment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for comment in comments {
        if is_doc_comment(&comment.text) {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let rest = comment.text[at + MARKER.len()..].trim();
        match parse_body(rest) {
            Ok((rule, reason)) => pragmas.push(Pragma {
                rule,
                reason,
                line: comment.line,
            }),
            Err(message) => errors.push(PragmaError {
                message,
                line: comment.line,
            }),
        }
    }
    (pragmas, errors)
}

/// `true` for `///`, `//!`, `/** */`, and `/*! */` comments — rendered
/// documentation, never a pragma carrier.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Parses `allow(<rule>, reason = "…")`.
fn parse_body(body: &str) -> Result<(String, String), String> {
    let teach = |what: &str| {
        format!("{what} — write `{MARKER} allow(<rule>, reason = \"why this site is exempt\")`")
    };
    let Some(args) = body.strip_prefix("allow") else {
        return Err(teach("pragma must start with `allow`"));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err(teach("missing `(` after `allow`"));
    };
    let Some(args) = args.strip_suffix(')') else {
        return Err(teach("missing closing `)`"));
    };
    let Some((rule, reason_part)) = args.split_once(',') else {
        return Err(teach("missing the mandatory `reason = \"…\"` argument"));
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(teach("rule id must be a kebab-case name"));
    }
    let reason_part = reason_part.trim();
    let Some(quoted) = reason_part.strip_prefix("reason") else {
        return Err(teach("second argument must be `reason = \"…\"`"));
    };
    let quoted = quoted.trim_start();
    let Some(quoted) = quoted.strip_prefix('=') else {
        return Err(teach("missing `=` after `reason`"));
    };
    let quoted = quoted.trim();
    let reason = quoted
        .strip_prefix('"')
        .and_then(|q| q.strip_suffix('"'))
        .ok_or_else(|| teach("reason must be a double-quoted string"))?;
    if reason.trim().is_empty() {
        return Err(teach("reason must not be empty"));
    }
    Ok((rule.to_owned(), reason.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> (Vec<Pragma>, Vec<PragmaError>) {
        scan(&lex(src).comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (pragmas, errors) =
            scan_src("let t = now(); // rchls-lint: allow(wall-clock, reason = \"bench timer\")\n");
        assert!(errors.is_empty());
        assert_eq!(pragmas.len(), 1);
        assert_eq!(pragmas[0].rule, "wall-clock");
        assert_eq!(pragmas[0].reason, "bench timer");
        assert_eq!(pragmas[0].line, 1);
    }

    #[test]
    fn missing_reason_is_an_error_not_a_suppression() {
        let (pragmas, errors) = scan_src("// rchls-lint: allow(wall-clock)\n");
        assert!(pragmas.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let (pragmas, errors) = scan_src("// rchls-lint: allow(wall-clock, reason = \"  \")\n");
        assert!(pragmas.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn pragma_inside_string_does_not_count() {
        let (pragmas, errors) =
            scan_src("let s = \"// rchls-lint: allow(wall-clock, reason = \\\"nope\\\")\";\n");
        assert!(pragmas.is_empty());
        assert!(errors.is_empty());
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (pragmas, errors) = scan_src("// just a note about rchls-lint the tool\n");
        assert!(pragmas.is_empty());
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let (pragmas, errors) = scan_src(
            "/// Write `// rchls-lint: allow(<rule>, reason = \"…\")` to suppress.\nfn f() {}\n",
        );
        assert!(pragmas.is_empty());
        assert!(errors.is_empty(), "{errors:?}");
    }
}
