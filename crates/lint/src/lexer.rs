//! A hand-rolled Rust lexer: just enough tokenization to run the rule
//! catalog without `syn` (the container builds offline, so the analyzer
//! follows the same shim discipline as `vendor/`).
//!
//! The lexer understands every construct that would otherwise corrupt a
//! token-stream scan: ordinary/raw/byte strings (`"…"`, `r#"…"#`,
//! `b"…"`, `br##"…"##`), char and byte-char literals (including `'"'`
//! and `'\''`), lifetimes vs. char literals (`'a` vs `'a'`), raw
//! identifiers (`r#fn`), nested block comments (`/* /* */ */`), and
//! numeric literals with suffixes and exponents (`1_000f64`, `1e-5`).
//! Comments are not tokens, but their text is kept (with position) so
//! suppression pragmas can be read from comments *only* — a pragma
//! spelled inside a string literal never counts.

/// What a token is; the `text` on [`Tok`] carries the spelling where a
/// rule needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident,
    /// A lifetime such as `'a` (text keeps the leading `'`).
    Lifetime,
    /// A char or byte-char literal.
    Char,
    /// A string literal of any flavor (ordinary, raw, byte, raw byte).
    Str,
    /// A numeric literal; see [`Tok::is_float_literal`].
    Num,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The token spelling (for [`TokKind::Punct`], one character).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// `true` for an identifier with exactly this spelling.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` for a punctuation token with exactly this character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// `true` when this numeric literal is a float (`1.5`, `1e9`,
    /// `2f64`), as opposed to an integer.
    #[must_use]
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        if t.contains('.') || t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // An exponent (`1e9`, `2E-5`): `e`/`E` after a digit, before an
        // optionally-signed digit. A suffix like `3usize` has no digit
        // before its `e`.
        let chars: Vec<char> = t.chars().collect();
        chars.windows(2).enumerate().any(|(i, w)| {
            matches!(w[0], 'e' | 'E')
                && i > 0
                && chars[i - 1].is_ascii_digit()
                && (w[1].is_ascii_digit()
                    || (matches!(w[1], '+' | '-')
                        && chars.get(i + 2).is_some_and(char::is_ascii_digit)))
        })
    }
}

/// One comment (line or block), kept for pragma scanning.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text, delimiters included.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub toks: Vec<Tok>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`, never failing: unterminated constructs consume to
/// end-of-file (rules still see every token before the damage).
#[must_use]
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn new(source: &str) -> Lexer {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col),
                'b' if self.peek(1) == Some('\'') => self.byte_char(line, col),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, col);
                }
                'b' if self.peek(1) == Some('r')
                    && matches!(self.peek(2), Some('"') | Some('#')) =>
                {
                    self.bump();
                    self.bump();
                    self.raw_string(line, col);
                }
                'r' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.raw_string(line, col);
                }
                'r' if self.peek(1) == Some('#') => self.raw_hash(line, col),
                '\'' => self.quote(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                _ if is_ident_start(c) => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// An ordinary (or byte) string body, opening `"` pending.
    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // the opening quote
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    self.bump(); // whatever is escaped, including `\"`
                }
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line, col);
    }

    /// A raw (or raw byte) string, positioned at the `#`s or `"`.
    fn raw_string(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // the opening quote
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Str, String::new(), line, col);
    }

    /// `r#…`: a raw string (`r#"…"#`) or a raw identifier (`r#fn`).
    fn raw_hash(&mut self, line: u32, col: u32) {
        let mut ahead = 1;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        if self.peek(ahead) == Some('"') {
            self.bump(); // the r
            self.raw_string(line, col);
        } else {
            self.bump(); // the r
            self.bump(); // the #
            self.ident(line, col);
        }
    }

    /// `b'…'`: a byte-char literal.
    fn byte_char(&mut self, line: u32, col: u32) {
        self.bump(); // the b
        self.char_body(line, col);
    }

    /// A bare `'`: a char literal or a lifetime.
    ///
    /// `'\…` is always a char literal; `'x'` (any single char, then a
    /// quote) is a char literal; otherwise an identifier start begins a
    /// lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        let one = self.peek(1);
        let two = self.peek(2);
        if one == Some('\\') || two == Some('\'') {
            self.char_body(line, col);
        } else if one.is_some_and(is_ident_start) {
            self.bump(); // the quote
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            // Unterminated or malformed; consume the quote and move on.
            self.bump();
            self.push(TokKind::Punct, "'".to_owned(), line, col);
        }
    }

    /// A char-literal body, opening `'` pending.
    fn char_body(&mut self, line: u32, col: u32) {
        self.bump(); // the opening quote
                     // Anything other than `\\` is the single (possibly multi-byte)
                     // character itself, already consumed.
        if self.bump() == Some('\\') {
            if self.bump() == Some('u') && self.peek(0) == Some('{') {
                while let Some(c) = self.bump() {
                    if c == '}' {
                        break;
                    }
                }
            } else {
                // `\x41`-style escapes: consume to the close quote.
                while let Some(c) = self.peek(0) {
                    if c == '\'' {
                        break;
                    }
                    self.bump();
                }
            }
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.push(TokKind::Char, String::new(), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let radix_prefix =
            self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b'));
        if radix_prefix {
            text.push(self.bump().expect("digit"));
            text.push(self.bump().expect("radix"));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // A fractional part only when a digit follows the dot:
            // `1.5` is a float, `1..5` and `1.max(2)` are not.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            if matches!(self.peek(0), Some('e') | Some('E'))
                && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                    || (matches!(self.peek(1), Some('+') | Some('-'))
                        && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
            {
                text.push(self.bump().expect("exponent"));
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' || c == '+' || c == '-' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`u32`, `f64`, …).
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a::b;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, ":".into()),
                (TokKind::Punct, ":".into()),
                (TokKind::Ident, "b".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("&'a str; 'x'; '\\n'; '\"'; b'\\n'");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 1, "{toks:?}");
        assert_eq!(lifetimes[0].1, "'a");
        assert_eq!(chars.len(), 4, "{toks:?}");
    }

    #[test]
    fn floats_are_classified() {
        let toks = lex("1 1.5 1..2 0x1f 1e9 2f64 3usize").toks;
        let floats: Vec<_> = toks
            .iter()
            .filter(|t| t.is_float_literal())
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "1e9", "2f64"]);
    }

    #[test]
    fn comments_are_kept_not_tokenized() {
        let lexed = lex("a // one\n/* two /* nested */ still */ b");
        assert_eq!(lexed.toks.len(), 2);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn strings_swallow_everything() {
        let lexed =
            lex(r####"let s = "Instant::now() // not a comment"; r#"also "quoted" here"#;"####);
        assert!(!lexed.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(lexed.comments.is_empty());
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
    }
}
