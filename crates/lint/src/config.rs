//! `lint.toml`: the committed, reviewable scope configuration.
//!
//! Suppression has exactly two mechanisms, both in-tree and both
//! carrying rationale: inline pragmas (see [`crate::pragma`]) for
//! single sites, and this file for whole crates or paths (a crate-wide
//! exemption such as "`rchls-telemetry` owns the clock" belongs in
//! review-visible configuration, not sprinkled over call sites).
//!
//! The container builds offline, so the parser is a hand-rolled TOML
//! subset — exactly what the committed `lint.toml` needs: `[section]`
//! and `[section.sub-section]` headers, string / integer / boolean
//! scalars, arrays of strings, and `#` comments.

use std::collections::BTreeMap;

/// Scope configuration for one rule, from a `[rules.<id>]` section.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Crates the rule runs in. Empty = every first-party crate.
    pub crates: Vec<String>,
    /// Crates the rule never fires in.
    pub allow_crates: Vec<String>,
    /// Repo-relative path prefixes the rule never fires in.
    pub allow_paths: Vec<String>,
}

impl RuleConfig {
    /// `true` when the rule applies to `crate_name` at `path` (repo
    /// relative, `/`-separated).
    #[must_use]
    pub fn applies(&self, crate_name: &str, path: &str) -> bool {
        if !self.crates.is_empty() && !self.crates.iter().any(|c| c == crate_name) {
            return false;
        }
        if self.allow_crates.iter().any(|c| c == crate_name) {
            return false;
        }
        !self
            .allow_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directories (repo relative) to scan for first-party sources.
    pub include: Vec<String>,
    /// Path prefixes never scanned (vendored shims, build output).
    pub exclude: Vec<String>,
    /// Per-rule scope, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            include: vec!["src".to_owned(), "crates".to_owned()],
            exclude: vec!["vendor".to_owned(), "target".to_owned()],
            rules: BTreeMap::new(),
        }
    }
}

impl LintConfig {
    /// The scope for `rule`, defaulting to "everywhere".
    #[must_use]
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered message on syntax the subset does not
    /// cover, unknown sections, or unknown keys — a config typo must
    /// fail loudly, not silently widen the lint's scope.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut config = LintConfig {
            include: Vec::new(),
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        };
        let mut section: Vec<String> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
                section = header.split('.').map(|s| s.trim().to_owned()).collect();
                if section.iter().any(String::is_empty) {
                    return Err(format!("line {lineno}: empty section name"));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim();
            let value = parse_value(value.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            config.apply(&section, key, value, lineno)?;
        }
        if config.include.is_empty() {
            config.include = LintConfig::default().include;
        }
        Ok(config)
    }

    fn apply(
        &mut self,
        section: &[String],
        key: &str,
        value: TomlValue,
        lineno: usize,
    ) -> Result<(), String> {
        let section_names: Vec<&str> = section.iter().map(String::as_str).collect();
        match (section_names.as_slice(), key) {
            ([], "schema_version") => match value {
                TomlValue::Int(SCHEMA_VERSION) => Ok(()),
                TomlValue::Int(other) => Err(format!(
                    "line {lineno}: unsupported schema_version {other} (this tool reads {SCHEMA_VERSION})"
                )),
                _ => Err(format!("line {lineno}: schema_version must be an integer")),
            },
            (["scan"], "include") => {
                self.include = value.into_strings(lineno, key)?;
                Ok(())
            }
            (["scan"], "exclude") => {
                self.exclude = value.into_strings(lineno, key)?;
                Ok(())
            }
            (["rules", rule], _) => {
                let entry = self.rules.entry((*rule).to_owned()).or_default();
                match key {
                    "crates" => entry.crates = value.into_strings(lineno, key)?,
                    "allow_crates" => entry.allow_crates = value.into_strings(lineno, key)?,
                    "allow_paths" => entry.allow_paths = value.into_strings(lineno, key)?,
                    other => {
                        return Err(format!(
                            "line {lineno}: unknown rule key {other:?} (crates, allow_crates, allow_paths)"
                        ))
                    }
                }
                Ok(())
            }
            _ => Err(format!(
                "line {lineno}: unknown section {:?}",
                section.join(".")
            )),
        }
    }
}

/// The `schema_version` this parser accepts.
pub const SCHEMA_VERSION: i64 = 1;

#[derive(Debug)]
enum TomlValue {
    Str(String),
    Int(i64),
    #[allow(dead_code)]
    Bool(bool),
    Array(Vec<TomlValue>),
}

impl TomlValue {
    fn into_strings(self, lineno: usize, key: &str) -> Result<Vec<String>, String> {
        match self {
            TomlValue::Array(items) => items
                .into_iter()
                .map(|item| match item {
                    TomlValue::Str(s) => Ok(s),
                    _ => Err(format!("line {lineno}: {key} must be an array of strings")),
                })
                .collect(),
            _ => Err(format!("line {lineno}: {key} must be an array of strings")),
        }
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part)?);
            }
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or("unterminated string")?;
        return Ok(TomlValue::Str(body.to_owned()));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    text.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("unsupported value {text:?}"))
}

/// Splits an array body on commas outside quotes.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_shape() {
        let config = LintConfig::parse(
            r#"
schema_version = 1

[scan]
include = ["src", "crates"]
exclude = ["vendor", "target"]  # build output

[rules.wall-clock]
allow_crates = ["rchls-telemetry"]

[rules.unordered-iter]
crates = ["rchls-core", "rchls-sched"]
allow_paths = ["crates/core/src/engine/fingerprint.rs"]
"#,
        )
        .unwrap();
        assert_eq!(config.include, vec!["src", "crates"]);
        let wall = config.rule("wall-clock");
        assert!(wall.applies("rchls-core", "crates/core/src/synth.rs"));
        assert!(!wall.applies("rchls-telemetry", "crates/telemetry/src/span.rs"));
        let unordered = config.rule("unordered-iter");
        assert!(unordered.applies("rchls-core", "crates/core/src/engine/cache.rs"));
        assert!(!unordered.applies("rchls-bind", "crates/bind/src/binding.rs"));
        assert!(!unordered.applies("rchls-core", "crates/core/src/engine/fingerprint.rs"));
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        assert!(LintConfig::parse("[rules.wall-clock]\ntypo_key = [\"x\"]\n").is_err());
        assert!(LintConfig::parse("[scans]\ninclude = [\"src\"]\n").is_err());
        assert!(LintConfig::parse("schema_version = 99\n").is_err());
    }

    #[test]
    fn unconfigured_rule_applies_everywhere() {
        let config = LintConfig::parse("schema_version = 1\n").unwrap();
        assert!(config
            .rule("float-order")
            .applies("rchls-core", "crates/core/src/x.rs"));
    }
}
