//! Findings and the two output formats.
//!
//! Human output is `path:line:col: [rule] message` plus the offending
//! line; `--format json` emits a schema-versioned document (the same
//! discipline as `BENCH_engine.json`) that CI uploads as the
//! `invariants` artifact. Both orderings are deterministic: findings
//! sort by `(path, line, col, rule)`.

use serde::Value;

/// Version stamped into JSON findings documents.
pub const LINT_SCHEMA_VERSION: u64 = 1;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The stable rule id.
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (chars).
    pub col: u32,
    /// The teaching message for this site.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// One pragma-suppressed site, kept in the JSON document so review can
/// audit every justified exemption without grepping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The rule that would have fired.
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// The pragma's mandatory reason.
    pub reason: String,
}

/// The complete result of one workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Files analyzed.
    pub files_scanned: usize,
    /// Violations, sorted `(path, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Justified exemptions, same order.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// `true` when the workspace is lint-clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n",
                f.path, f.line, f.col, f.rule, f.message, f.snippet
            ));
        }
        out.push_str(&format!(
            "rchls-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed.len(),
            self.files_scanned
        ));
        out
    }

    /// The schema-versioned JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let key = |k: &str| Value::Str(k.to_owned());
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Map(vec![
                    (key("rule"), Value::Str(f.rule.to_owned())),
                    (key("path"), Value::Str(f.path.clone())),
                    (key("line"), Value::UInt(u64::from(f.line))),
                    (key("col"), Value::UInt(u64::from(f.col))),
                    (key("message"), Value::Str(f.message.clone())),
                    (key("snippet"), Value::Str(f.snippet.clone())),
                ])
            })
            .collect();
        let suppressed = self
            .suppressed
            .iter()
            .map(|s| {
                Value::Map(vec![
                    (key("rule"), Value::Str(s.rule.clone())),
                    (key("path"), Value::Str(s.path.clone())),
                    (key("line"), Value::UInt(u64::from(s.line))),
                    (key("reason"), Value::Str(s.reason.clone())),
                ])
            })
            .collect();
        let doc = Value::Map(vec![
            (key("schema_version"), Value::UInt(LINT_SCHEMA_VERSION)),
            (key("tool"), Value::Str("rchls-lint".to_owned())),
            (key("files_scanned"), Value::UInt(self.files_scanned as u64)),
            (key("clean"), Value::Bool(self.is_clean())),
            (key("findings"), Value::Seq(findings)),
            (key("suppressed"), Value::Seq(suppressed)),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_owned())
    }
}
