//! The gate the CI `invariants` job enforces, as a plain test: the
//! repo's own first-party source must scan clean under the committed
//! `lint.toml`, and every suppression must carry its reason.

#[test]
fn the_workspace_scans_clean_under_the_committed_config() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = rchls_lint::run(&root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "the workspace must be lint-clean:\n{}",
        report.render_text()
    );
    // The scan actually covered the workspace, not an empty directory.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — discovery is broken",
        report.files_scanned
    );
    // Suppressions exist (the justified wall-clock/panic sites) and
    // every one carries a non-empty reason.
    assert!(!report.suppressed.is_empty());
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} suppresses {} without a reason",
            s.path,
            s.line,
            s.rule
        );
    }
    // The JSON rendering round-trips through the vendored parser and
    // keeps the schema version.
    let json = report.render_json();
    let doc: serde::Value = serde_json::from_str(&json).expect("report JSON parses");
    let entries = doc.as_map().expect("report is an object");
    assert_eq!(
        serde::map_get(entries, "schema_version"),
        Some(&serde::Value::UInt(rchls_lint::report::LINT_SCHEMA_VERSION))
    );
    match serde::map_get(entries, "clean") {
        Some(serde::Value::Bool(true)) => {}
        other => panic!("`clean` must be true, got {other:?}"),
    }
}
