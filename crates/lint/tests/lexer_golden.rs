//! Golden test over the lexer's full token stream for a torture file
//! covering raw strings, nested comments, lifetimes-vs-chars, raw
//! identifiers, and numeric classification.
//!
//! Regenerate the golden after an intentional lexer change with
//! `BLESS=1 cargo test -p rchls-lint --test lexer_golden`, then review
//! the diff like any other source change.

use rchls_lint::lexer;
use std::path::Path;

#[test]
fn torture_file_lexes_to_the_golden_token_stream() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let source = std::fs::read_to_string(dir.join("lexer_torture.rs")).expect("fixture present");
    let lexed = lexer::lex(&source);

    let mut rendered = String::new();
    for t in &lexed.toks {
        let float = if t.is_float_literal() { " float" } else { "" };
        rendered.push_str(&format!(
            "{}:{} {:?} {}{}\n",
            t.line, t.col, t.kind, t.text, float
        ));
    }
    rendered.push_str(&format!("comments: {}\n", lexed.comments.len()));

    let golden_path = dir.join("lexer_torture.tokens");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden missing — run once with BLESS=1 and review the output");
    assert_eq!(
        rendered,
        golden,
        "token stream drifted from {}",
        golden_path.display()
    );
}
