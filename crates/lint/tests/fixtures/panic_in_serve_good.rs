// Fixture: every request gets a structured answer; no panics outside
// test code.
pub fn handle(line: &str) -> Result<String, String> {
    let parsed: u64 = line
        .parse()
        .map_err(|e| format!("bad request id: {e}"))?;
    respond(parsed).ok_or_else(|| "no response".to_owned())
}

fn respond(id: u64) -> Option<String> {
    Some(format!("ok {id}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::handle("7").unwrap(), "ok 7");
    }
}
