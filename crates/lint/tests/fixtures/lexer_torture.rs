// Fixture: every disambiguation the lexer must get right, in one file.
/* nested /* block /* comments */ close */ properly */
pub fn torture<'a>(x: &'a str) -> f64 {
    let plain = 'x';
    let escaped = '\'';
    let byte = b'\n';
    let raw = r#"a "quoted" string with // no comment and 'no char'"#;
    let raw_bytes = br##"nested "# hashes"##;
    let s = "string with /* not a comment */ and \"escapes\"";
    let ident = r#fn;
    let float_dot = 1.5;
    let float_suffix = 2f64;
    let float_exp = 3e2;
    let not_float = 42usize;
    let hex = 0x2e;
    let _ = (x, plain, escaped, byte, raw, raw_bytes, s, ident, hex);
    float_dot + float_suffix + float_exp + not_float as f64
}
