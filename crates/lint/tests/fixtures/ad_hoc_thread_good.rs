// Fixture: structured concurrency — scoped threads join before the
// function returns, so no detached lifetime escapes review.
pub fn map_in_parallel(items: &[u64]) -> Vec<u64> {
    let mut out = vec![0; items.len()];
    std::thread::scope(|scope| {
        for (slot, item) in out.iter_mut().zip(items) {
            scope.spawn(move || *slot = item * 2);
        }
    });
    out
}
