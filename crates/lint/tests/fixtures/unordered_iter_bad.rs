// Fixture: iterating hash containers in arbitrary order on a path
// whose output could reach a deterministic document.
use std::collections::{HashMap, HashSet};

pub fn report(by_name: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for key in by_name.keys() {
        out.push_str(key);
    }
    out
}

pub fn drain_all(seen: HashSet<u64>) -> u64 {
    let mut total = 0;
    for v in seen.into_iter() {
        total += v;
    }
    total
}
