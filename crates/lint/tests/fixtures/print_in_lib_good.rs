// Fixture: a library returns text; the binary decides where it goes.
use std::fmt::Write;

pub fn announcement(name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "starting {name}");
    out
}
