// Fixture: reads the wall clock on a shipped path — both spellings.
use std::time::{Instant, SystemTime};

pub fn how_long(work: impl FnOnce()) -> u64 {
    let start = Instant::now();
    work();
    start.elapsed().as_micros() as u64
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
