// Fixture: a library writing to stdout/stderr directly.
pub fn announce(name: &str) {
    println!("starting {name}");
    eprintln!("(debug) starting {name}");
}
