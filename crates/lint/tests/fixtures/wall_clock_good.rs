// Fixture: no wall-clock reads on shipped paths; a test module may
// time things freely.
pub fn how_long(work: impl FnOnce(), ticks: &mut u64) {
    work();
    *ticks += 1;
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let start = std::time::Instant::now();
        assert!(start.elapsed().as_nanos() < u128::MAX);
    }
}
