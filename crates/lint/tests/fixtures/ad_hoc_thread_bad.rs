// Fixture: spawns a detached thread outside the blessed concurrency
// owners.
use std::thread;

pub fn fire_and_forget(job: impl FnOnce() + Send + 'static) {
    thread::spawn(job);
}

pub fn also_flagged(job: impl FnOnce() + Send + 'static) {
    std::thread::spawn(job);
}
