// Fixture: hash containers are fine as storage — the order is restored
// before anything observes it (a BTree collect in the same statement,
// or a sort in the next one).
use std::collections::{BTreeMap, HashMap};

pub fn report(by_name: &HashMap<String, u32>) -> String {
    let ordered = by_name.iter().collect::<BTreeMap<_, _>>();
    let mut out = String::new();
    for (key, _) in &ordered {
        out.push_str(key);
    }
    out
}

pub fn ascending_totals(by_name: &HashMap<String, u32>) -> Vec<u32> {
    let mut vals: Vec<u32> = by_name.values().copied().collect();
    vals.sort_unstable();
    vals
}
