// Fixture: total-order float comparison and tolerance-based equality.
pub fn rank(scores: &mut Vec<f64>) {
    scores.sort_by(|a, b| a.total_cmp(b));
}

pub fn close_to_half(x: f64) -> bool {
    (x - 0.5).abs() < 1e-12
}
