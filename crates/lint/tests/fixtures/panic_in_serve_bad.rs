// Fixture: panics on request-handling paths — every spelling the rule
// catches.
pub fn handle(line: &str) -> String {
    let parsed: u64 = line.parse().unwrap();
    if parsed == 0 {
        panic!("zero is not a request id");
    }
    respond(parsed).expect("responses always build")
}

pub fn dispatch(method: &str) -> String {
    match method {
        "ping" => "pong".to_owned(),
        other => unreachable!("unknown method {other}"),
    }
}

fn respond(id: u64) -> Option<String> {
    Some(format!("ok {id}"))
}
