// Fixture: NaN-fragile float comparisons — `partial_cmp` ordering and
// equality against a float literal.
pub fn rank(scores: &mut Vec<f64>) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn is_half(x: f64) -> bool {
    x == 0.5
}
