//! Per-rule fixture pairs, the seeded self-test, and pragma round-trips
//! through the public analysis entry points.
//!
//! Every rule ships with a `fixtures/<rule>_bad.rs` that must fire and a
//! `fixtures/<rule>_good.rs` expressing the accepted alternative that
//! must scan clean. The self-test proves the whole catalog goes red on
//! seeded violations — a rule that silently stops firing fails here
//! before it can rubber-stamp the workspace.

use rchls_lint::config::LintConfig;
use rchls_lint::source::SourceFile;
use rchls_lint::{analyze_files, report::Report, rules};
use std::collections::BTreeSet;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn analyze_source(name: &str, is_bin: bool, source: &str) -> Report {
    let file = SourceFile::parse(
        format!("crates/fixture/src/{name}"),
        "rchls-fixture".to_owned(),
        is_bin,
        source,
    );
    analyze_files(vec![file], &LintConfig::default())
}

fn analyze_fixture(name: &str) -> Report {
    analyze_source(name, false, &fixture(name))
}

fn fired(report: &Report) -> BTreeSet<String> {
    report.findings.iter().map(|f| f.rule.to_owned()).collect()
}

/// (rule id, bad fixture's expected finding count).
const PAIRS: &[(&str, usize)] = &[
    ("wall-clock", 2),
    ("float-order", 2),
    ("unordered-iter", 2),
    ("panic-in-serve", 4),
    ("ad-hoc-thread", 2),
    ("print-in-lib", 2),
];

#[test]
fn every_bad_fixture_fires_its_rule_and_only_its_rule() {
    for (rule, expected) in PAIRS {
        let file_stem = rule.replace('-', "_");
        let report = analyze_fixture(&format!("{file_stem}_bad.rs"));
        assert_eq!(
            fired(&report),
            BTreeSet::from([(*rule).to_owned()]),
            "{rule}: wrong rule set fired:\n{}",
            report.render_text()
        );
        assert_eq!(
            report.findings.len(),
            *expected,
            "{rule}: expected {expected} findings:\n{}",
            report.render_text()
        );
        for finding in &report.findings {
            assert!(!finding.message.is_empty());
            assert!(!finding.snippet.is_empty(), "findings carry a snippet");
            assert!(finding.line > 0 && finding.col > 0);
        }
    }
}

#[test]
fn every_good_fixture_scans_clean() {
    for (rule, _) in PAIRS {
        let file_stem = rule.replace('-', "_");
        let report = analyze_fixture(&format!("{file_stem}_good.rs"));
        assert!(
            report.is_clean(),
            "{rule}: the good fixture must scan clean:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn seeded_violations_light_up_the_whole_catalog() {
    // All six bad fixtures in one scan: the set of rules that fire must
    // be exactly the shipped catalog (red-before-green for every rule).
    let files = PAIRS
        .iter()
        .map(|(rule, _)| {
            let name = format!("{}_bad.rs", rule.replace('-', "_"));
            SourceFile::parse(
                format!("crates/fixture/src/{name}"),
                "rchls-fixture".to_owned(),
                false,
                &fixture(&name),
            )
        })
        .collect();
    let report = analyze_files(files, &LintConfig::default());
    let catalog: BTreeSet<String> = rules::catalog().iter().map(|r| r.id().to_owned()).collect();
    assert_eq!(
        fired(&report),
        catalog,
        "every rule in the catalog must fire on its seeded violation:\n{}",
        report.render_text()
    );
}

#[test]
fn printing_is_fine_in_binaries() {
    let report = analyze_source("main.rs", true, &fixture("print_in_lib_bad.rs"));
    assert!(
        report.is_clean(),
        "binaries are the designated printers:\n{}",
        report.render_text()
    );
}

#[test]
fn a_reasoned_pragma_suppresses_exactly_its_line() {
    let marker = "rchls-lint:";
    let source = format!(
        "use std::time::Instant;\n\
         pub fn timed() -> u64 {{\n\
         \x20   // {marker} allow(wall-clock, reason = \"benchmark timer\")\n\
         \x20   let start = Instant::now();\n\
         \x20   let again = Instant::now();\n\
         \x20   (again - start).as_micros() as u64\n\
         }}\n"
    );
    let report = analyze_source("lib.rs", false, &source);
    // The annotated line is suppressed (with its reason recorded); the
    // line below the pragma's reach still fires.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].reason, "benchmark timer");
    assert_eq!(report.findings.len(), 1, "{}", report.render_text());
    assert_eq!(report.findings[0].rule, "wall-clock");
    assert_eq!(report.findings[0].line, 5);
}

#[test]
fn a_reasonless_pragma_is_a_finding_and_suppresses_nothing() {
    let marker = "rchls-lint:";
    let source = format!(
        "use std::time::Instant;\n\
         pub fn timed() {{\n\
         \x20   // {marker} allow(wall-clock)\n\
         \x20   let _ = Instant::now();\n\
         }}\n"
    );
    let report = analyze_source("lib.rs", false, &source);
    assert!(report.suppressed.is_empty(), "no reason, no suppression");
    let rules_hit = fired(&report);
    assert!(rules_hit.contains("bad-pragma"), "{rules_hit:?}");
    assert!(rules_hit.contains("wall-clock"), "{rules_hit:?}");
}

#[test]
fn a_pragma_for_the_wrong_rule_does_not_suppress() {
    let marker = "rchls-lint:";
    let source = format!(
        "use std::time::Instant;\n\
         pub fn timed() {{\n\
         \x20   // {marker} allow(float-order, reason = \"not the firing rule\")\n\
         \x20   let _ = Instant::now();\n\
         }}\n"
    );
    let report = analyze_source("lib.rs", false, &source);
    assert!(report.suppressed.is_empty());
    assert_eq!(fired(&report), BTreeSet::from(["wall-clock".to_owned()]));
}

#[test]
fn config_scoping_gates_rules_by_crate_and_path() {
    let toml = "schema_version = 1\n\
                [rules.wall-clock]\n\
                crates = [\"rchls-only-this\"]\n\
                [rules.panic-in-serve]\n\
                allow_paths = [\"crates/fixture/src/exempt\"]\n";
    let config = LintConfig::parse(toml).expect("config parses");
    let wall = |crate_name: &str| {
        let file = SourceFile::parse(
            "crates/fixture/src/lib.rs".to_owned(),
            crate_name.to_owned(),
            false,
            &fixture("wall_clock_bad.rs"),
        );
        analyze_files(vec![file], &config)
    };
    assert!(!wall("rchls-only-this").is_clean());
    assert!(wall("rchls-other").is_clean(), "rule scoped to one crate");

    let panics = |path: &str| {
        let file = SourceFile::parse(
            path.to_owned(),
            "rchls-fixture".to_owned(),
            false,
            &fixture("panic_in_serve_bad.rs"),
        );
        analyze_files(vec![file], &config)
    };
    assert!(!panics("crates/fixture/src/handler.rs").is_clean());
    assert!(
        panics("crates/fixture/src/exempt/legacy.rs").is_clean(),
        "allow_paths exempts by prefix"
    );
}
