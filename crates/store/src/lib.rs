//! Persistent content-addressed result store.
//!
//! [`ResultStore`] maps 64-bit content fingerprints (the
//! `rchls-core` synthesis cache keys) to opaque JSON payloads on disk,
//! so synthesized results survive process restarts and can be shared by
//! a fleet of processes working the same design space. The store is the
//! second cache tier behind the in-memory LRU: a memory miss probes the
//! store, and a fresh synthesis writes its result back.
//!
//! Design rules (specified in `docs/store.md`):
//!
//! * **Sharded layout** — an entry for key `k` lives at
//!   `objects/<hh>/<hh>/<16-hex>.json` where `hh` are the two leading
//!   byte pairs of the key's hex form, keeping directories small at
//!   millions of entries.
//! * **Schema-versioned entries** — every file starts with a one-line
//!   JSON header (`magic`, `schema_version`, `fingerprint`,
//!   `payload_bytes`) followed by the payload line. Readers from a
//!   different schema era refuse the entry instead of misparsing it.
//! * **Atomic writes** — entries are written to `tmp/` and renamed into
//!   place, so a crash mid-write never leaves a half-entry under a live
//!   key; concurrent writers of the same key race benignly (both write
//!   the same deterministic content).
//! * **Corruption is quarantined, never trusted** — a truncated,
//!   misheadered, or wrongly-keyed entry is moved to `quarantine/` and
//!   reported as [`Lookup::Quarantined`]; the caller treats it as a
//!   miss and re-synthesizes. A wrong report is never returned.
//! * **Checkpoints** — long sweeps persist resumable progress snapshots
//!   under `checkpoints/`, with the same header validation and
//!   quarantine discipline.
//!
//! The store knows nothing about synthesis: payloads are opaque strings
//! (in practice JSON documents produced by `rchls-core`). That keeps
//! this crate dependency-light and the on-disk format stable against
//! engine evolution — payload-level schema changes are the header
//! version's job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

mod gc;

pub use gc::{GcPolicy, GcReport};

/// The on-disk entry schema version. Bump when the header or payload
/// envelope changes shape; readers quarantine entries from other eras.
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// The magic tag every entry header carries.
pub const STORE_MAGIC: &str = "rchls-store";

/// One lookup's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// The entry exists, validated end to end; here is its payload.
    Hit(String),
    /// No entry under this key.
    Miss,
    /// An entry existed but failed validation (truncated, wrong schema
    /// version, wrong fingerprint, unreadable header). It has been
    /// moved to `quarantine/` and the caller should treat the lookup as
    /// a miss.
    Quarantined,
}

/// A store-level failure (I/O on open or save).
#[derive(Debug)]
pub struct StoreError {
    op: &'static str,
    path: PathBuf,
    reason: String,
}

impl StoreError {
    fn new(op: &'static str, path: &Path, reason: impl fmt::Display) -> StoreError {
        StoreError {
            op,
            path: path.to_path_buf(),
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store {} {}: {}",
            self.op,
            self.path.display(),
            self.reason
        )
    }
}

impl std::error::Error for StoreError {}

/// The one-line JSON header that opens every entry file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct EntryHeader {
    magic: String,
    schema_version: u32,
    fingerprint: u64,
    payload_bytes: u64,
}

/// Size and health counters of a store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Live entries under `objects/`.
    pub objects: u64,
    /// Total bytes of the live entry files.
    pub object_bytes: u64,
    /// Files parked under `quarantine/`.
    pub quarantined: u64,
    /// Checkpoint snapshots under `checkpoints/`.
    pub checkpoints: u64,
}

/// Monotone process-wide sequence for unique tmp/quarantine names
/// (combined with the process id, so concurrent processes on the same
/// store never collide). Deliberately process-wide rather than
/// per-instance: two `ResultStore` handles to the same root in one
/// process share the pid, and per-instance counters both starting at 0
/// would mint the same scratch name and truncate each other's
/// in-flight writes.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A content-addressed result store rooted at one directory.
///
/// All methods take `&self`; the store is safe to share across threads
/// (writes are atomic renames, reads validate what they find).
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the directory skeleton cannot be
    /// created (permissions, `root` is a file, ...).
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, StoreError> {
        let root = root.into();
        for sub in ["objects", "tmp", "quarantine", "checkpoints"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| StoreError::new("open", &dir, e))?;
        }
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The object path of `key`: `objects/<hh>/<hh>/<16-hex>.json`.
    fn object_path(&self, key: u64) -> PathBuf {
        let hex = format!("{key:016x}");
        self.root
            .join("objects")
            .join(&hex[0..2])
            .join(&hex[2..4])
            .join(format!("{hex}.json"))
    }

    /// A unique scratch file name (process id + process-wide sequence —
    /// no clocks or randomness, so writes stay deterministic to trace).
    fn scratch_name(&self, hex: &str, ext: &str) -> String {
        let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        format!("{hex}.{}.{n}.{ext}", std::process::id())
    }

    /// Looks up `key`, validating the entry end to end. Invalid entries
    /// are moved to `quarantine/` and reported as
    /// [`Lookup::Quarantined`].
    #[must_use]
    pub fn load(&self, key: u64) -> Lookup {
        self.load_file(&self.object_path(key), key)
    }

    /// Atomically writes `payload` under `key` (write to `tmp/`, then
    /// rename into place).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the write or rename fails; the
    /// store is left without a partial entry under `key`.
    pub fn save(&self, key: u64, payload: &str) -> Result<(), StoreError> {
        self.save_file(&self.object_path(key), key, payload)
    }

    /// Moves the entry under `key` (if any) to `quarantine/`. Used by
    /// callers whose *payload-level* validation fails on an entry whose
    /// envelope was intact — e.g. a report that no longer deserializes
    /// after an engine schema change. Returns `true` when a file was
    /// quarantined.
    pub fn quarantine_object(&self, key: u64) -> bool {
        self.quarantine_file(&self.object_path(key))
    }

    /// Looks up the checkpoint stored under `key`, with the same
    /// validation and quarantine discipline as [`ResultStore::load`].
    #[must_use]
    pub fn load_checkpoint(&self, key: u64) -> Lookup {
        self.load_file(&self.checkpoint_path(key), key)
    }

    /// Atomically writes a checkpoint snapshot under `key`.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the write or rename fails.
    pub fn save_checkpoint(&self, key: u64, payload: &str) -> Result<(), StoreError> {
        self.save_file(&self.checkpoint_path(key), key, payload)
    }

    /// Removes the checkpoint under `key` (a completed run's snapshot
    /// is stale the moment the final document exists). Missing files
    /// are fine.
    pub fn remove_checkpoint(&self, key: u64) {
        let _ = std::fs::remove_file(self.checkpoint_path(key));
    }

    fn checkpoint_path(&self, key: u64) -> PathBuf {
        self.root
            .join("checkpoints")
            .join(format!("{key:016x}.json"))
    }

    /// Every live object key, ascending. (Directory listings come back
    /// in filesystem order; sorting makes iteration deterministic.)
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .object_files()
            .iter()
            .filter_map(|p| key_of(p))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Size and health counters of this store.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let files = self.object_files();
        let object_bytes = files
            .iter()
            .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .sum();
        StoreStats {
            objects: files.len() as u64,
            object_bytes,
            quarantined: count_files(&self.root.join("quarantine")),
            checkpoints: count_files(&self.root.join("checkpoints")),
        }
    }

    /// Evicts entries per `policy` (age cutoff first, then
    /// oldest-first down to the byte budget). See [`GcPolicy`].
    #[must_use]
    pub fn gc(&self, policy: GcPolicy) -> GcReport {
        gc::run(self, policy)
    }

    /// Every live entry file under `objects/`, sorted by path for
    /// deterministic iteration.
    pub(crate) fn object_files(&self) -> Vec<PathBuf> {
        let mut files = Vec::new();
        for d1 in sorted_dir(&self.root.join("objects")) {
            for d2 in sorted_dir(&d1) {
                files.extend(sorted_dir(&d2).into_iter().filter(|p| p.is_file()));
            }
        }
        files
    }

    fn load_file(&self, path: &Path, key: u64) -> Lookup {
        let mut text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable (permissions, not UTF-8, a directory in the
            // way): park it like any other invalid entry.
            Err(_) => {
                self.quarantine_file(path);
                return Lookup::Quarantined;
            }
        };
        match rchls_chaos::faultpoint!("store.read") {
            // A torn read hands validation half the file; the length
            // framing must reject it.
            Some(rchls_chaos::Fault::Torn) => text.truncate(text.len() / 2),
            // Any other injected fault behaves like the unreadable-file
            // arm above.
            Some(_) => {
                self.quarantine_file(path);
                return Lookup::Quarantined;
            }
            None => {}
        }
        match validate_entry(&text, key) {
            Ok(payload) => Lookup::Hit(payload.to_owned()),
            Err(_) => {
                self.quarantine_file(path);
                Lookup::Quarantined
            }
        }
    }

    fn save_file(&self, path: &Path, key: u64, payload: &str) -> Result<(), StoreError> {
        let header = EntryHeader {
            magic: STORE_MAGIC.to_owned(),
            schema_version: STORE_SCHEMA_VERSION,
            fingerprint: key,
            payload_bytes: payload.len() as u64,
        };
        let header_line =
            serde_json::to_string(&header).map_err(|e| StoreError::new("save", path, e))?;
        let tmp = self
            .root
            .join("tmp")
            .join(self.scratch_name(&format!("{key:016x}"), "tmp"));
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = std::fs::File::create(tmp)?;
            match rchls_chaos::faultpoint!("store.write") {
                // A torn write: intact header, payload cut short, no
                // terminator — then published as if nothing happened.
                // The reader's length framing must quarantine it.
                Some(rchls_chaos::Fault::Torn) => {
                    f.write_all(header_line.as_bytes())?;
                    f.write_all(b"\n")?;
                    f.write_all(&payload.as_bytes()[..payload.len() / 2])?;
                    return f.sync_all();
                }
                Some(_) => return Err(rchls_chaos::injected_io_error("store.write")),
                None => {}
            }
            f.write_all(header_line.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload.as_bytes())?;
            f.write_all(b"\n")?;
            if rchls_chaos::faultpoint!("store.write.fsync").is_some() {
                return Err(rchls_chaos::injected_io_error("store.write.fsync"));
            }
            f.sync_all()
        };
        if let Err(e) = write(&tmp) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::new("save", &tmp, e));
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| StoreError::new("save", parent, e))?;
        }
        if rchls_chaos::faultpoint!("store.write.rename").is_some() {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::new(
                "save",
                path,
                rchls_chaos::injected_io_error("store.write.rename"),
            ));
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            StoreError::new("save", path, e)
        })
    }

    /// Best-effort move of `path` into `quarantine/` under a unique
    /// name. A failed move (entry raced away, exotic filesystem) falls
    /// back to deletion — an invalid entry must never stay live.
    fn quarantine_file(&self, path: &Path) -> bool {
        if !path.exists() {
            return false;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("entry")
            .to_owned();
        let dest = self
            .root
            .join("quarantine")
            .join(self.scratch_name(&stem, "json"));
        std::fs::rename(path, &dest)
            .or_else(|_| std::fs::remove_file(path))
            .is_ok()
    }

    /// The modification time of the entry under `key`, if it exists
    /// (the gc eviction clock).
    pub(crate) fn object_mtime(&self, path: &Path) -> SystemTime {
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .unwrap_or(SystemTime::UNIX_EPOCH)
    }
}

/// Validates one entry file's text against `key`, returning the payload
/// slice on success and the failure reason otherwise.
fn validate_entry(text: &str, key: u64) -> Result<&str, String> {
    let (header_line, rest) = text
        .split_once('\n')
        .ok_or_else(|| "missing payload line".to_owned())?;
    let header: EntryHeader =
        serde_json::from_str(header_line).map_err(|e| format!("unreadable header: {e}"))?;
    if header.magic != STORE_MAGIC {
        return Err(format!("bad magic {:?}", header.magic));
    }
    if header.schema_version != STORE_SCHEMA_VERSION {
        return Err(format!(
            "schema version {} (this reader speaks {STORE_SCHEMA_VERSION})",
            header.schema_version
        ));
    }
    if header.fingerprint != key {
        return Err(format!(
            "fingerprint {:016x} does not match the key {key:016x}",
            header.fingerprint
        ));
    }
    // The payload line must be exactly `payload_bytes` long and
    // newline-terminated — anything else is a truncated or padded file.
    let expected = header.payload_bytes as usize;
    if rest.len() != expected + 1 || !rest.ends_with('\n') {
        return Err(format!(
            "payload is {} bytes, header declares {expected}",
            rest.len().saturating_sub(usize::from(rest.ends_with('\n')))
        ));
    }
    Ok(&rest[..expected])
}

/// The key a live entry file encodes, if its name is `<16-hex>.json`.
fn key_of(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    if path.extension()?.to_str()? != "json" || stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// The entries of `dir`, sorted by path (empty when unreadable).
fn sorted_dir(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => Vec::new(),
    };
    out.sort();
    out
}

fn count_files(dir: &Path) -> u64 {
    sorted_dir(dir).iter().filter(|p| p.is_file()).count() as u64
}

/// Ages `path`'s modification time to `mtime` — test-only hook for gc's
/// age policy (production code never rewrites mtimes).
#[doc(hidden)]
pub fn set_file_mtime(path: &Path, mtime: SystemTime) -> std::io::Result<()> {
    let f = std::fs::File::options().append(true).open(path)?;
    f.set_times(std::fs::FileTimes::new().set_modified(mtime))
}

/// `Duration` helper: days as a duration (gc flags speak days).
#[must_use]
pub fn days(n: u64) -> Duration {
    Duration::from_secs(n * 24 * 60 * 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh scratch root under the system temp dir, unique per test.
    fn scratch(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("rchls-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn save_then_load_round_trips() {
        let store = ResultStore::open(scratch("roundtrip")).unwrap();
        assert_eq!(store.load(7), Lookup::Miss);
        store.save(7, r#"{"x": 1}"#).unwrap();
        assert_eq!(store.load(7), Lookup::Hit(r#"{"x": 1}"#.to_owned()));
        // Overwrite wins atomically.
        store.save(7, r#"{"x": 2}"#).unwrap();
        assert_eq!(store.load(7), Lookup::Hit(r#"{"x": 2}"#.to_owned()));
        assert_eq!(store.keys(), vec![7]);
        let stats = store.stats();
        assert_eq!((stats.objects, stats.quarantined), (1, 0));
        assert!(stats.object_bytes > 0);
    }

    #[test]
    fn multiline_payloads_round_trip_by_length_framing() {
        // The header separates at the *first* newline and declares the
        // exact payload byte count, so payloads containing newlines
        // survive verbatim.
        let store = ResultStore::open(scratch("multiline")).unwrap();
        store.save(1, "{\"a\":\n1}").unwrap();
        assert_eq!(store.load(1), Lookup::Hit("{\"a\":\n1}".to_owned()));
    }

    #[test]
    fn truncated_entries_are_quarantined_then_missed() {
        let store = ResultStore::open(scratch("truncated")).unwrap();
        store.save(42, &"x".repeat(100)).unwrap();
        let path = store.object_path(42);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 30]).unwrap();
        assert_eq!(store.load(42), Lookup::Quarantined);
        // The bad file is out of the live tree: next lookup is a miss.
        assert_eq!(store.load(42), Lookup::Miss);
        assert_eq!(store.stats().quarantined, 1);
        // The key can be repopulated cleanly.
        store.save(42, "fresh").unwrap();
        assert_eq!(store.load(42), Lookup::Hit("fresh".to_owned()));
    }

    #[test]
    fn wrong_schema_version_is_quarantined() {
        let store = ResultStore::open(scratch("schema")).unwrap();
        store.save(9, "payload").unwrap();
        let path = store.object_path(9);
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replace(
            &format!("\"schema_version\":{STORE_SCHEMA_VERSION}"),
            &format!("\"schema_version\":{}", STORE_SCHEMA_VERSION + 1),
        );
        assert_ne!(text, bumped, "the header must spell the version");
        std::fs::write(&path, bumped).unwrap();
        assert_eq!(store.load(9), Lookup::Quarantined);
        assert_eq!(store.load(9), Lookup::Miss);
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined() {
        let store = ResultStore::open(scratch("fingerprint")).unwrap();
        store.save(1, "payload-of-one").unwrap();
        // Simulate a mis-filed entry: key 1's bytes under key 2's path.
        let from = store.object_path(1);
        let to = store.object_path(2);
        std::fs::create_dir_all(to.parent().unwrap()).unwrap();
        std::fs::copy(&from, &to).unwrap();
        assert_eq!(store.load(2), Lookup::Quarantined);
        assert_eq!(store.load(2), Lookup::Miss);
        // The correctly-filed original still answers.
        assert_eq!(store.load(1), Lookup::Hit("payload-of-one".to_owned()));
    }

    #[test]
    fn garbage_headers_are_quarantined() {
        let store = ResultStore::open(scratch("garbage")).unwrap();
        store.save(3, "p").unwrap();
        std::fs::write(store.object_path(3), "not json\np\n").unwrap();
        assert_eq!(store.load(3), Lookup::Quarantined);
        store.save(4, "p").unwrap();
        std::fs::write(store.object_path(4), "no newline at all").unwrap();
        assert_eq!(store.load(4), Lookup::Quarantined);
        assert_eq!(store.stats().quarantined, 2);
    }

    #[test]
    fn explicit_quarantine_demotes_entries_with_valid_envelopes() {
        let store = ResultStore::open(scratch("demote")).unwrap();
        store.save(5, "payload the caller cannot decode").unwrap();
        assert!(store.quarantine_object(5));
        assert!(!store.quarantine_object(5), "already gone");
        assert_eq!(store.load(5), Lookup::Miss);
        assert_eq!(store.stats().quarantined, 1);
    }

    #[test]
    fn checkpoints_round_trip_and_quarantine_like_objects() {
        let store = ResultStore::open(scratch("checkpoint")).unwrap();
        assert_eq!(store.load_checkpoint(11), Lookup::Miss);
        store
            .save_checkpoint(11, r#"{"completed": [0, 1]}"#)
            .unwrap();
        assert_eq!(
            store.load_checkpoint(11),
            Lookup::Hit(r#"{"completed": [0, 1]}"#.to_owned())
        );
        assert_eq!(store.stats().checkpoints, 1);
        // Corrupt it: quarantined, then treated as absent.
        let path = store.checkpoint_path(11);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(store.load_checkpoint(11), Lookup::Quarantined);
        assert_eq!(store.load_checkpoint(11), Lookup::Miss);
        store.save_checkpoint(11, "again").unwrap();
        store.remove_checkpoint(11);
        assert_eq!(store.load_checkpoint(11), Lookup::Miss);
        assert_eq!(store.stats().checkpoints, 0);
    }

    #[test]
    fn keys_are_sorted_and_ignore_foreign_files() {
        let store = ResultStore::open(scratch("keys")).unwrap();
        for key in [0xfeed_u64, 0x0001, 0xbeef_0000_0000_0000] {
            store.save(key, "p").unwrap();
        }
        std::fs::write(store.root().join("objects/README"), "not an entry").unwrap();
        assert_eq!(store.keys(), vec![0x0001, 0xfeed, 0xbeef_0000_0000_0000]);
    }

    #[test]
    fn gc_by_size_evicts_oldest_first_with_key_tiebreak() {
        let store = ResultStore::open(scratch("gc-size")).unwrap();
        for key in [3u64, 1, 2] {
            store.save(key, &"x".repeat(10)).unwrap();
            // Equal mtimes force the deterministic (mtime, key)
            // tie-break: ascending keys evict first.
            set_file_mtime(&store.object_path(key), SystemTime::UNIX_EPOCH).unwrap();
        }
        let per_entry = store.stats().object_bytes / 3;
        let report = store.gc(GcPolicy {
            max_age: None,
            max_bytes: Some(per_entry),
        });
        assert_eq!((report.examined, report.evicted), (3, 2));
        assert_eq!(store.keys(), vec![3], "largest key survives the tie");
        assert!(report.kept_bytes <= per_entry);
        assert_eq!(report.evicted_bytes, 2 * per_entry);
    }

    #[test]
    fn gc_by_age_keeps_young_entries() {
        let store = ResultStore::open(scratch("gc-age")).unwrap();
        store.save(1, "old").unwrap();
        store.save(2, "new").unwrap();
        set_file_mtime(&store.object_path(1), SystemTime::UNIX_EPOCH).unwrap();
        let report = store.gc(GcPolicy {
            max_age: Some(days(30)),
            max_bytes: None,
        });
        assert_eq!((report.examined, report.evicted), (2, 1));
        assert_eq!(store.keys(), vec![2]);
        // A no-op policy touches nothing.
        let report = store.gc(GcPolicy {
            max_age: None,
            max_bytes: None,
        });
        assert_eq!((report.examined, report.evicted), (1, 0));
        assert_eq!(store.keys(), vec![2]);
    }

    #[test]
    fn two_handles_to_one_root_never_collide_on_scratch_names() {
        // Regression: the scratch sequence used to be per-instance, so
        // two handles in one process (same pid, both counting 0, 1, ...)
        // could mint the same tmp name and truncate each other's
        // in-flight writes. The sequence is process-wide now; racing
        // handles must always publish valid entries.
        let root = scratch("two-handles");
        let a = std::sync::Arc::new(ResultStore::open(&root).unwrap());
        let b = std::sync::Arc::new(ResultStore::open(&root).unwrap());
        let payload = format!("{{\"x\": \"{}\"}}", "y".repeat(4096));
        let spawn = |store: std::sync::Arc<ResultStore>, payload: String| {
            std::thread::spawn(move || {
                for _ in 0..50 {
                    store.save(7, &payload).unwrap();
                }
            })
        };
        let ta = spawn(a.clone(), payload.clone());
        let tb = spawn(b, payload.clone());
        ta.join().unwrap();
        tb.join().unwrap();
        // Same deterministic content from both writers: whoever won,
        // the published entry must validate and match.
        assert_eq!(a.load(7), Lookup::Hit(payload));
        assert_eq!(a.stats().quarantined, 0);
        // No stranded tmp files either.
        assert_eq!(count_files(&root.join("tmp")), 0);
    }

    #[test]
    fn concurrent_writers_of_one_key_leave_a_valid_entry() {
        // First-writer-wins under the race: with *different* payloads
        // racing on one key, the survivor must be exactly one writer's
        // bytes, never an interleaving.
        let root = scratch("racing-writers");
        let store = std::sync::Arc::new(ResultStore::open(&root).unwrap());
        let payloads: Vec<String> = (0..4)
            .map(|i| format!("{{\"writer\": {i}, \"pad\": \"{}\"}}", "z".repeat(2048)))
            .collect();
        let threads: Vec<_> = payloads
            .iter()
            .map(|p| {
                let store = store.clone();
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        store.save(9, &p).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        match store.load(9) {
            Lookup::Hit(survivor) => {
                assert!(
                    payloads.contains(&survivor),
                    "survivor must be one writer's payload, not a mix"
                );
            }
            other => panic!("expected a valid entry, got {other:?}"),
        }
        assert_eq!(store.stats().quarantined, 0);
    }

    #[test]
    fn store_error_reports_op_and_path() {
        let dir = scratch("error");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("objects"), "a file in the way").unwrap();
        let err = ResultStore::open(&dir).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("store open"), "{text}");
        assert!(text.contains("objects"), "{text}");
    }
}
