//! Store garbage collection: age and size eviction.
//!
//! Eviction order mirrors the in-memory cache discipline: strictly
//! oldest-first by modification time with the entry key as the
//! deterministic tie-break — the on-disk analogue of the LRU table's
//! `(last_used, key)` rule. Two gc runs over the same tree evict the
//! same entries.

use crate::ResultStore;
use std::time::{Duration, SystemTime};

/// What `gc` may evict. `None` fields impose no constraint; a policy of
/// two `None`s is a no-op scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcPolicy {
    /// Evict entries whose modification time is older than this.
    pub max_age: Option<Duration>,
    /// After the age pass, evict oldest-first until the live entries
    /// total at most this many bytes.
    pub max_bytes: Option<u64>,
}

/// What one gc run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Live entries examined.
    pub examined: u64,
    /// Entries evicted (deleted).
    pub evicted: u64,
    /// Bytes of the surviving entries.
    pub kept_bytes: u64,
    /// Bytes freed by eviction.
    pub evicted_bytes: u64,
}

pub(crate) fn run(store: &ResultStore, policy: GcPolicy) -> GcReport {
    // (mtime, key) per entry — the deterministic eviction order.
    let mut entries: Vec<(SystemTime, u64, std::path::PathBuf, u64)> = store
        .object_files()
        .into_iter()
        .filter_map(|path| {
            let key = crate::key_of(&path)?;
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            Some((store.object_mtime(&path), key, path, bytes))
        })
        .collect();
    entries.sort_by_key(|&(mtime, key, _, _)| (mtime, key));

    let mut report = GcReport {
        examined: entries.len() as u64,
        ..GcReport::default()
    };
    let cutoff = policy.max_age.map(|age| {
        // rchls-lint: allow(wall-clock, reason = "gc ages entries against real time by design; the eviction choice stays deterministic given the tree")
        SystemTime::now()
            .checked_sub(age)
            .unwrap_or(SystemTime::UNIX_EPOCH)
    });

    let mut kept: Vec<(u64, std::path::PathBuf, u64)> = Vec::new();
    for (mtime, key, path, bytes) in entries {
        match cutoff {
            Some(cutoff) if mtime < cutoff => {
                evict(&mut report, &path, bytes);
            }
            _ => kept.push((key, path, bytes)),
        }
    }

    if let Some(max_bytes) = policy.max_bytes {
        let mut live: u64 = kept.iter().map(|&(_, _, bytes)| bytes).sum();
        // `kept` is still in (mtime, key) order: pop from the front.
        let mut survivors = Vec::new();
        for (key, path, bytes) in kept {
            if live > max_bytes {
                evict(&mut report, &path, bytes);
                live -= bytes;
            } else {
                survivors.push((key, path, bytes));
            }
        }
        kept = survivors;
    }

    report.kept_bytes = kept.iter().map(|&(_, _, bytes)| bytes).sum();
    report
}

fn evict(report: &mut GcReport, path: &std::path::Path, bytes: u64) {
    if std::fs::remove_file(path).is_ok() {
        report.evicted += 1;
        report.evicted_bytes += bytes;
    }
}
