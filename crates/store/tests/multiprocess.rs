//! Two real processes hammering one store directory: the cross-process
//! analogue of the in-process concurrent-writer unit tests. The store's
//! atomicity discipline (unique tmp names carrying the process id, then
//! rename) must hold across address spaces, not just across threads.
//!
//! The child process is this same test binary re-executed with
//! `RCHLS_STORE_MP_CHILD` set; the guard test below becomes the writer
//! under that variable and is a no-op otherwise.

use rchls_store::{Lookup, ResultStore};
use std::path::PathBuf;

const SHARED_KEY: u64 = 42;
const KEYS_PER_WRITER: u64 = 25;

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!("rchls-store-mp-{}", std::process::id()))
}

/// Writer-child entry point: under `RCHLS_STORE_MP_CHILD=<dir>|<tag>`,
/// write a contested shared key plus a private key range, then exit.
#[test]
fn multiprocess_writer_child() {
    let Ok(spec) = std::env::var("RCHLS_STORE_MP_CHILD") else {
        return;
    };
    let (dir, tag) = spec.split_once('|').expect("spec is dir|tag");
    let offset: u64 = tag.parse::<u64>().unwrap() * KEYS_PER_WRITER;
    let store = ResultStore::open(dir).unwrap();
    for round in 0..KEYS_PER_WRITER {
        store
            .save(
                SHARED_KEY,
                &format!("{{\"writer\": {tag}, \"round\": {round}}}"),
            )
            .unwrap();
        store
            .save(1000 + offset + round, &format!("{{\"private\": {round}}}"))
            .unwrap();
    }
}

#[test]
fn two_processes_writing_one_store_leave_only_valid_entries() {
    let dir = scratch();
    let _ = std::fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().unwrap();
    let store = ResultStore::open(&dir).unwrap();

    let mut children: Vec<std::process::Child> = (0..2)
        .map(|tag| {
            std::process::Command::new(&exe)
                .args(["multiprocess_writer_child", "--exact"])
                .env("RCHLS_STORE_MP_CHILD", format!("{}|{tag}", dir.display()))
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn writer child")
        })
        .collect();
    // The parent reads the contested key while both children write it:
    // every observation must be a valid entry or a miss — never a torn
    // read, never a quarantine.
    let mut hits = 0u32;
    while children.iter_mut().any(|c| c.try_wait().unwrap().is_none()) {
        match store.load(SHARED_KEY) {
            Lookup::Hit(payload) => {
                assert!(payload.contains("\"writer\""), "torn read: {payload}");
                hits += 1;
            }
            Lookup::Miss => {}
            other => panic!("mid-race load quarantined a valid entry: {other:?}"),
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for child in &mut children {
        assert!(child.wait().unwrap().success(), "writer child failed");
    }
    assert!(hits > 0, "the race window never produced a readable entry");

    // Afterwards: the shared key holds one of the two final payloads,
    // every private key is intact, and nothing was quarantined or left
    // behind in tmp/.
    match store.load(SHARED_KEY) {
        Lookup::Hit(payload) => assert!(
            payload.contains(&format!("\"round\": {}", KEYS_PER_WRITER - 1)),
            "last write did not win: {payload}"
        ),
        other => panic!("shared key unreadable after the race: {other:?}"),
    }
    for tag in 0..2u64 {
        for round in 0..KEYS_PER_WRITER {
            let key = 1000 + tag * KEYS_PER_WRITER + round;
            match store.load(key) {
                Lookup::Hit(payload) => {
                    assert_eq!(payload, format!("{{\"private\": {round}}}"))
                }
                other => panic!("private key {key} lost: {other:?}"),
            }
        }
    }
    let stats = store.stats();
    assert_eq!(stats.objects, 1 + 2 * KEYS_PER_WRITER);
    assert_eq!(stats.quarantined, 0);
    let tmp_litter = std::fs::read_dir(dir.join("tmp"))
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert_eq!(tmp_litter, 0, "tmp/ should be empty after clean exits");
    let _ = std::fs::remove_dir_all(&dir);
}
