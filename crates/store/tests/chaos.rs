//! Fault-injection coverage for store I/O: every `store.*` injection
//! point, exercised through the public API.
//!
//! Lives in its own integration-test binary (not the unit-test module)
//! because an armed fault plan is process-global: unit tests run in one
//! process, and an armed plan would leak faults into unrelated tests
//! racing in sibling threads. Here the process is ours, and the tests
//! additionally serialize on [`chaos_lock`].

use rchls_store::{Lookup, ResultStore};
use std::path::PathBuf;

/// A fresh scratch root under the system temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("rchls-store-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// The fault plane is process-global; tests that arm it must not
/// overlap.
fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn arm(plan: &str) {
    rchls_chaos::arm(rchls_chaos::FaultPlan::parse(plan).unwrap()).unwrap();
}

fn tmp_files(store: &ResultStore) -> usize {
    std::fs::read_dir(store.root().join("tmp"))
        .map(|entries| entries.filter_map(Result::ok).count())
        .unwrap_or(0)
}

#[test]
fn injected_write_faults_fail_saves_without_partial_entries() {
    let _guard = chaos_lock();
    let store = ResultStore::open(scratch("write")).unwrap();
    // Each point counts its own hits: save 1 dies at store.write (the
    // later points are never reached), save 2 passes store.write (hit
    // 2) and dies at fsync's first hit, save 3 dies at rename's first.
    arm(r#"{"schema_version": 1, "faults": [
        {"point": "store.write", "action": "error", "hits": [1]},
        {"point": "store.write.fsync", "action": "error", "hits": [1]},
        {"point": "store.write.rename", "action": "error", "hits": [1]}
    ]}"#);
    for expected in ["store.write", "store.write.fsync", "store.write.rename"] {
        let err = store.save(5, "payload").unwrap_err().to_string();
        assert!(err.contains("chaos: injected"), "{err}");
        assert!(err.contains(expected), "{err} should mention {expected}");
        assert_eq!(
            store.load(5),
            Lookup::Miss,
            "no partial entry after {expected}"
        );
        assert_eq!(tmp_files(&store), 0, "no stranded tmp after {expected}");
    }
    // Hit 4: no rule fires; the save goes through untouched.
    store.save(5, "payload").unwrap();
    assert_eq!(store.load(5), Lookup::Hit("payload".to_owned()));
    let report = rchls_chaos::disarm().unwrap();
    // 4 saves total: store.write saw all 4, fsync the 3 that got past
    // the body write, rename the 2 that got past fsync.
    let hits: Vec<u64> = report.points.iter().map(|p| p.hits).collect();
    assert_eq!(hits, vec![4, 3, 2]);
}

#[test]
fn injected_torn_writes_are_quarantined_on_load() {
    let _guard = chaos_lock();
    let store = ResultStore::open(scratch("torn")).unwrap();
    arm(r#"{"schema_version": 1, "faults": [
        {"point": "store.write", "action": "torn", "hits": [1]}
    ]}"#);
    // The torn write "succeeds" — the corruption is only caught by the
    // reader's length framing.
    store.save(6, &"x".repeat(200)).unwrap();
    assert_eq!(store.load(6), Lookup::Quarantined);
    assert_eq!(store.load(6), Lookup::Miss);
    assert_eq!(store.stats().quarantined, 1);
    rchls_chaos::disarm();
    // The key repopulates cleanly once the plan is gone.
    store.save(6, "fresh").unwrap();
    assert_eq!(store.load(6), Lookup::Hit("fresh".to_owned()));
}

#[test]
fn injected_read_faults_quarantine_live_entries() {
    let _guard = chaos_lock();
    let store = ResultStore::open(scratch("read")).unwrap();
    store.save(8, "first").unwrap();
    store.save(9, "second").unwrap();
    arm(r#"{"schema_version": 1, "faults": [
        {"point": "store.read", "action": "torn", "hits": [1]},
        {"point": "store.read", "action": "error", "hits": [2]}
    ]}"#);
    assert_eq!(store.load(8), Lookup::Quarantined); // torn
    assert_eq!(store.load(9), Lookup::Quarantined); // error
    rchls_chaos::disarm();
    assert_eq!(store.stats().quarantined, 2);
    // Both keys repopulate cleanly after the plan is disarmed.
    store.save(8, "fresh").unwrap();
    assert_eq!(store.load(8), Lookup::Hit("fresh".to_owned()));
}

#[test]
fn checkpoints_share_the_write_points() {
    let _guard = chaos_lock();
    let store = ResultStore::open(scratch("checkpoint")).unwrap();
    arm(r#"{"schema_version": 1, "faults": [
        {"point": "store.write.fsync", "action": "error", "hits": [1]}
    ]}"#);
    // save_file is shared between objects and checkpoints, so the
    // store.write.* points guard both (documented in docs/chaos.md).
    let err = store
        .save_checkpoint(3, "snapshot")
        .unwrap_err()
        .to_string();
    assert!(err.contains("store.write.fsync"), "{err}");
    assert_eq!(store.load_checkpoint(3), Lookup::Miss);
    store.save_checkpoint(3, "snapshot").unwrap();
    assert_eq!(store.load_checkpoint(3), Lookup::Hit("snapshot".to_owned()));
    rchls_chaos::disarm();
}
