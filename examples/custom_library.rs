//! Building a custom reliability-characterized library from gate-level
//! fault injection — the end-to-end version of the paper's Section 4 flow
//! (our substitution for its MAX-layout + HSPICE step) — and synthesizing
//! against it.
//!
//! Run with `cargo run --release --example custom_library`.

use rc_hls::core::{Bounds, Synthesizer};
use rc_hls::dfg::OpClass;
use rc_hls::netlist::generators;
use rc_hls::relmath::Reliability;
use rc_hls::reslib::{characterize_components, Library, ResourceVersion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: generate the gate-level components (8-bit datapath here to
    // keep the example fast; the characterization chain is width-agnostic).
    let components = vec![
        generators::ripple_carry_adder(8),
        generators::brent_kung_adder(8),
        generators::kogge_stone_adder(8),
    ];

    // Step 2: Monte-Carlo SEU injection, anchored like the paper at
    // R(ripple-carry) = 0.999.
    let anchor = Reliability::new(0.999)?;
    let characterized = characterize_components(&components, anchor, 20_000, 2005);
    println!("component characterization (20k injected faults each):");
    for (name, gates, susceptibility, reliability) in &characterized {
        println!(
            "  {name:<6} gates={gates:<4} susceptibility={susceptibility:.3} -> R={reliability}"
        );
    }

    // Step 3: build a library from the derived reliabilities. Delays and
    // areas follow the architectures' logic depth and gate count.
    let versions = vec![
        ResourceVersion::new("rca8", OpClass::Adder, 1, 2, characterized[0].3),
        ResourceVersion::new("bk8", OpClass::Adder, 2, 1, characterized[1].3),
        ResourceVersion::new("ks8", OpClass::Adder, 4, 1, characterized[2].3),
        // Multipliers from the paper's published values, for brevity.
        ResourceVersion::new("csm", OpClass::Multiplier, 2, 2, Reliability::new(0.999)?),
        ResourceVersion::new("lfm", OpClass::Multiplier, 4, 1, Reliability::new(0.969)?),
    ];
    let library = Library::new(versions)?;

    // Step 4: synthesize a workload against the custom library.
    let dfg = rc_hls::workloads::ar_lattice();
    let design = Synthesizer::new(&dfg, &library).synthesize(Bounds::new(24, 14))?;
    println!("\nAR-lattice design under Ld=24, Ad=14:");
    println!(
        "latency={} area={} reliability={}",
        design.latency, design.area, design.reliability
    );
    Ok(())
}
