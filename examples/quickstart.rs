//! Quickstart: synthesize the paper's 16-point FIR filter under latency
//! and area bounds and inspect the resulting design.
//!
//! Run with `cargo run --release --example quickstart`.

use rc_hls::core::{Bounds, Synthesizer};
use rc_hls::reslib::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 16-point symmetric FIR filter: 15 additions, 8 multiplications.
    let dfg = rc_hls::workloads::fir16();
    // The paper's Table-1 library: three adders, two multipliers, each a
    // different (area, delay, reliability) trade-off.
    let library = Library::table1();

    println!(
        "benchmark: {} ({} operations)",
        dfg.name(),
        dfg.node_count()
    );
    println!("library:");
    for (_, version) in library.iter() {
        println!("  {version}");
    }

    // Ask for the most reliable design within 12 cycles and 8 area units.
    let bounds = Bounds::new(12, 8);
    let design = Synthesizer::new(&dfg, &library).synthesize(bounds)?;

    println!("\nsynthesized under {bounds}:");
    println!("{}", design.render(&dfg, &library));

    // Compare with the single-version alternative a conventional flow
    // would pick (everything on the fast type-2 units).
    let single = rc_hls::core::synthesize_nmr_baseline(
        &dfg,
        &library,
        bounds,
        rc_hls::core::RedundancyModel::default(),
    )?;
    println!(
        "single-version + redundancy baseline reliability: {}",
        single.reliability
    );
    println!(
        "reliability-centric improvement: {:+.2}%",
        (design.reliability.value() - single.reliability.value()) / single.reliability.value()
            * 100.0
    );
    Ok(())
}
