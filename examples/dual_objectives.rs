//! The paper's future-work objectives, available as extensions: minimize
//! area under (latency, reliability) bounds, and minimize latency under
//! (area, reliability) bounds.
//!
//! Run with `cargo run --release --example dual_objectives`.

use rc_hls::core::modes::{minimize_area, minimize_latency};
use rc_hls::relmath::Reliability;
use rc_hls::reslib::Library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = rc_hls::workloads::diffeq();
    let library = Library::table1();
    println!("benchmark: {} ({} ops)\n", dfg.name(), dfg.node_count());

    println!("minimum area meeting Ld=7 at increasing reliability floors:");
    for floor in [0.75, 0.85, 0.90, 0.95] {
        match minimize_area(&dfg, &library, 7, Reliability::new(floor)?, 32) {
            Ok(d) => println!(
                "  R >= {floor:.2}: area={:<3} latency={:<3} achieved R={}",
                d.area, d.latency, d.reliability
            ),
            Err(e) => println!("  R >= {floor:.2}: {e}"),
        }
    }

    println!("\nminimum latency meeting Ad=10 at increasing reliability floors:");
    for floor in [0.75, 0.85, 0.90, 0.95] {
        match minimize_latency(&dfg, &library, 10, Reliability::new(floor)?, 40) {
            Ok(d) => println!(
                "  R >= {floor:.2}: latency={:<3} area={:<3} achieved R={}",
                d.latency, d.area, d.reliability
            ),
            Err(e) => println!("  R >= {floor:.2}: {e}"),
        }
    }
    Ok(())
}
