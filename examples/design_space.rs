//! Design-space exploration: sweep the differential-equation solver over
//! a grid of latency/area bounds and compare the three strategies —
//! the redundancy baseline [3], the reliability-centric approach, and
//! the combined scheme (the paper's Table 2 workflow).
//!
//! Run with `cargo run --release --example design_space`.

use rc_hls::core::explore::{averages, format_table, sweep};
use rc_hls::reslib::Library;

fn main() {
    let dfg = rc_hls::workloads::diffeq();
    let library = Library::table1();
    // The paper's own Table 2(c) grid.
    let grid = [
        (5, 11),
        (5, 13),
        (5, 15),
        (6, 11),
        (6, 13),
        (6, 15),
        (7, 7),
        (7, 9),
        (7, 11),
    ];
    println!("benchmark: {} ({} ops)", dfg.name(), dfg.node_count());
    let rows = sweep(&dfg, &library, &grid);
    println!("{}", format_table(&rows));
    let (baseline, ours, combined) = averages(&rows);
    println!("averages: Ref[3]={baseline:.5}  ours={ours:.5}  combined={combined:.5}");
    println!(
        "\nreading: positive %Imprv at tight bounds (top rows) and the\n\
         combined column dominating everywhere reproduce the paper's trend."
    );
}
