//! Session-oriented batch synthesis through the [`Engine`] and the open
//! workload-source registry.
//!
//! Run with `cargo run --release --example engine_batch` (from the repo
//! root, so the `file:` spec resolves).

use rc_hls::core::{Engine, SynthJob};
use rc_hls::reslib::Library;
use rc_hls::workloads::{self, Workload, WorkloadError, WorkloadSource};
use std::sync::Arc;

/// An out-of-tree workload source: serial adder chains under
/// `chain:<n>`. Registering it once makes `chain:` specs work
/// everywhere — this engine, the `rchls` CLI flags, batch job files.
struct ChainSource;

impl WorkloadSource for ChainSource {
    fn scheme(&self) -> &str {
        "chain"
    }

    fn description(&self) -> &str {
        "a serial chain of <n> additions (chain:8)"
    }

    fn load(&self, rest: &str) -> Result<Workload, WorkloadError> {
        let n: usize = rest.parse().map_err(|_| WorkloadError {
            spec: format!("chain:{rest}"),
            message: "expected chain:<n> with a positive length".to_owned(),
        })?;
        let mut b = rc_hls::dfg::DfgBuilder::new(format!("chain{n}"));
        for i in 0..n.max(1) {
            b = b.op(&format!("c{i}"), rc_hls::dfg::OpKind::Add);
            if i > 0 {
                b = b.dep(&format!("c{}", i - 1), &format!("c{i}"));
            }
        }
        Ok(Workload {
            spec: format!("chain:{}", n.max(1)),
            dfg: b.build().expect("chains are acyclic"),
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    workloads::register_workload_source(Arc::new(ChainSource))?;

    // One session: the library and every resolved workload are interned,
    // and every synthesis point is memoized across jobs.
    let engine = Engine::new(Library::table1());
    println!("engine with {} worker(s)\n", engine.jobs());

    // A batch mixing all four spec schemes. Jobs carry their strategy
    // and flow by value, so one batch can compare approaches.
    let jobs = vec![
        SynthJob::new("builtin:fir16", 12, 8),
        SynthJob::new("builtin:fir16", 12, 8).with_strategy("combined"),
        SynthJob::new("random:24x5@7", 10, 16),
        SynthJob::new("file:examples/fir4.dfg", 6, 6),
        SynthJob::new("chain:8", 10, 3),
        SynthJob::new("chain:8", 4, 3), // infeasible: 8 serial adds need 8 cycles
    ];
    let batch = engine.run_batch(&jobs);

    for outcome in &batch.outcomes {
        match &outcome.report {
            Some(report) => println!(
                "{:<24} {:<9} Ld={:<3} Ad={:<3} -> reliability {:.5} ({} loop iterations)",
                outcome.workload,
                outcome.strategy,
                outcome.latency_bound,
                outcome.area_bound,
                report.design.reliability.value(),
                report.diagnostics.loop_iterations,
            ),
            None => println!(
                "{:<24} {:<9} Ld={:<3} Ad={:<3} -> {}",
                outcome.workload,
                outcome.strategy,
                outcome.latency_bound,
                outcome.area_bound,
                outcome.error.as_deref().unwrap_or("unknown failure"),
            ),
        }
    }

    println!(
        "\n{} jobs over {} interned workload(s), {} memoized synthesis points \
         (cache: {} hits / {} misses)",
        batch.jobs,
        engine.interned_workloads(),
        batch.memoized_points,
        engine.cache_stats().hits,
        engine.cache_stats().misses,
    );

    // Repeating the whole batch is answered entirely from the cache.
    let again = engine.run_batch(&jobs);
    assert_eq!(again.outcomes, batch.outcomes);
    println!(
        "repeat batch: {} hits / {} misses",
        engine.cache_stats().hits,
        engine.cache_stats().misses,
    );
    Ok(())
}
