//! Pipelined synthesis: trade throughput (initiation interval) against
//! area and reliability on the butterfly workload — the pipelined half of
//! the paper's "both pipelined and non-pipelined data-paths" claim.
//!
//! Run with `cargo run --release --example pipelined`.

use rc_hls::core::{Bounds, Synthesizer};
use rc_hls::reslib::Library;

fn main() {
    let dfg = rc_hls::workloads::butterfly8();
    let library = Library::table1();
    let bounds = Bounds::new(14, 40);
    println!(
        "benchmark: {} ({} ops), bounds: {bounds}\n",
        dfg.name(),
        dfg.node_count()
    );
    println!(
        "{:>4} {:>10} {:>6} {:>12}   note",
        "II", "throughput", "area", "reliability"
    );
    let synth = Synthesizer::new(&dfg, &library);
    for ii in [1u32, 2, 3, 4, 7, 14] {
        match synth.synthesize_pipelined(bounds, ii) {
            Ok(d) => println!(
                "{ii:>4} {:>10} {:>6} {:>12}   {}",
                format!("1/{ii} cyc"),
                d.area,
                d.reliability.to_string(),
                if ii == bounds.latency {
                    "(= non-pipelined)"
                } else {
                    ""
                }
            ),
            Err(e) => println!(
                "{ii:>4} {:>10}      -            -   {e}",
                format!("1/{ii} cyc")
            ),
        }
    }
    println!(
        "\nreading: smaller II folds more operations onto each residue, so\n\
         more (or faster, less reliable) units are needed — reliability and\n\
         area both degrade as throughput rises."
    );
}
