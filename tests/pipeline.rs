//! End-to-end integration tests: the full pipeline (workload → library →
//! synthesis → schedule/binding validation → reliability) across crates.

use rc_hls::bind::bind_left_edge;
use rc_hls::core::{
    synthesize_combined, synthesize_nmr_baseline, Bounds, FlowSpec, RedundancyModel, Synthesizer,
};
use rc_hls::dfg::OpClass;
use rc_hls::relmath::serial_reliability;
use rc_hls::reslib::Library;
use rc_hls::sched::{asap, schedule_density};

/// Representative feasible bounds per benchmark (see DESIGN.md §5).
fn bounds_for(name: &str) -> Bounds {
    match name {
        "figure4a" => Bounds::new(5, 4),
        "fir16" => Bounds::new(12, 8),
        "ewf" => Bounds::new(15, 10),
        "diffeq" => Bounds::new(6, 11),
        "ar-lattice" => Bounds::new(24, 14),
        "butterfly8" => Bounds::new(10, 16),
        "iir4" => Bounds::new(20, 14),
        other => panic!("no bounds for {other}"),
    }
}

#[test]
fn full_pipeline_on_every_benchmark() {
    let library = Library::table1();
    for (name, ctor) in rc_hls::workloads::all_benchmarks() {
        let dfg = ctor();
        let bounds = bounds_for(name);
        let design = Synthesizer::new(&dfg, &library)
            .synthesize(bounds)
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(design.latency <= bounds.latency, "{name} latency");
        assert!(design.area <= bounds.area, "{name} area");
        // The schedule and binding must be internally consistent.
        let delays = design.assignment.delays(&dfg, &library);
        design.schedule.validate(&dfg, &delays).unwrap();
        design.binding.assert_valid(&dfg, &design.schedule, &delays);
        // The reported reliability must equal the recomputed product.
        let expect = serial_reliability(
            dfg.node_ids()
                .map(|n| library.version(design.assignment.version(n)).reliability()),
        );
        assert!(
            (design.reliability.value() - expect.value()).abs() < 1e-12,
            "{name} reliability mismatch"
        );
    }
}

#[test]
fn three_strategies_rank_consistently_on_diffeq() {
    // Tight bounds: reliability-centric beats the redundancy baseline;
    // combined dominates both (the paper's headline claim).
    let dfg = rc_hls::workloads::diffeq();
    let library = Library::table1();
    let bounds = Bounds::new(5, 11);
    let base = synthesize_nmr_baseline(&dfg, &library, bounds, RedundancyModel::default()).unwrap();
    let ours = Synthesizer::new(&dfg, &library).synthesize(bounds).unwrap();
    let comb = synthesize_combined(
        &dfg,
        &library,
        bounds,
        &FlowSpec::default(),
        RedundancyModel::default(),
    )
    .unwrap();
    assert!(
        ours.reliability.value() > base.reliability.value(),
        "ours {} must beat baseline {} at tight bounds",
        ours.reliability,
        base.reliability
    );
    assert!(comb.reliability.value() + 1e-12 >= ours.reliability.value());
    assert!(comb.reliability.value() + 1e-12 >= base.reliability.value());
}

#[test]
fn baseline_wins_with_loose_area_like_the_paper_observes() {
    // The paper's second finding: once the area bound is loose enough for
    // wholesale redundancy, the NMR baseline overtakes the pure
    // reliability-centric approach (Table 2, negative %Imprv cells).
    let dfg = rc_hls::workloads::fir16();
    let library = Library::table1();
    let bounds = Bounds::new(14, 24);
    let base = synthesize_nmr_baseline(&dfg, &library, bounds, RedundancyModel::default()).unwrap();
    let ours = Synthesizer::new(&dfg, &library).synthesize(bounds).unwrap();
    assert!(
        base.reliability.value() > ours.reliability.value(),
        "baseline {} should overtake ours {} at loose area",
        base.reliability,
        ours.reliability
    );
    // ...and the combined approach recovers the lead.
    let comb = synthesize_combined(
        &dfg,
        &library,
        bounds,
        &FlowSpec::default(),
        RedundancyModel::default(),
    )
    .unwrap();
    assert!(comb.reliability.value() + 1e-9 >= base.reliability.value());
}

#[test]
fn paper_pinned_values_diffeq_baseline() {
    // 0.969^11 = 0.70723: the paper's Table 2(c) Ref[3] value at (5, 11),
    // reproduced exactly by our baseline at the same bounds.
    let dfg = rc_hls::workloads::diffeq();
    let library = Library::table1();
    let base = synthesize_nmr_baseline(
        &dfg,
        &library,
        Bounds::new(5, 11),
        RedundancyModel::default(),
    )
    .unwrap();
    assert!((base.reliability.value() - 0.70723).abs() < 5e-6);
}

#[test]
fn paper_pinned_values_fir_products() {
    // The FIR all-type-2 serial product the paper reports as 0.48467.
    let dfg = rc_hls::workloads::fir16();
    let library = Library::table1();
    let a2 = library.version_by_name("adder2").unwrap();
    let m2 = library.version_by_name("mult2").unwrap();
    let assign = rc_hls::bind::Assignment::from_fn(&dfg, &library, |n| {
        if dfg.node(n).class() == OpClass::Adder {
            a2
        } else {
            m2
        }
    });
    let r = assign.design_reliability(&library);
    assert!((r.value() - 0.48467).abs() < 5e-6);
}

#[test]
fn manual_pipeline_matches_synthesizer_components() {
    // Drive the scheduling + binding layers directly (as a downstream
    // user integrating custom passes would) and cross-check invariants.
    let dfg = rc_hls::workloads::ewf();
    let library = Library::table1();
    let assign = rc_hls::bind::Assignment::uniform(&dfg, &library).unwrap();
    let delays = assign.delays(&dfg, &library);
    let min = asap(&dfg, &delays).unwrap().latency();
    let schedule = schedule_density(&dfg, &delays, min + 4).unwrap();
    schedule.validate(&dfg, &delays).unwrap();
    let binding = bind_left_edge(&dfg, &schedule, &assign, &library);
    binding.assert_valid(&dfg, &schedule, &delays);
    // Left-edge instance counts per class match the schedule's peaks for a
    // single-version-per-class assignment.
    for class in OpClass::ALL {
        let peak = schedule.peak_usage(&dfg, &delays, class);
        let instances = binding
            .instances()
            .iter()
            .filter(|i| library.version(i.version).class() == class)
            .count() as u32;
        assert_eq!(peak, instances, "class {class}");
    }
}

#[test]
fn pipelined_synthesis_end_to_end() {
    let dfg = rc_hls::workloads::butterfly8();
    let library = Library::table1();
    let synth = Synthesizer::new(&dfg, &library);
    let bounds = Bounds::new(14, 40);
    let d = synth
        .synthesize_pipelined(bounds, 4)
        .expect("II=4 is feasible");
    assert!(d.latency <= bounds.latency && d.area <= bounds.area);
    let delays = d.assignment.delays(&dfg, &library);
    d.schedule.validate(&dfg, &delays).unwrap();
    // No unit may be double-booked modulo the initiation interval.
    for inst in d.binding.instances() {
        let mut used = [false; 4];
        for &n in &inst.nodes {
            let s = d.schedule.start(n);
            for t in s..s + delays.get(n).min(4) {
                let r = ((t - 1) % 4) as usize;
                assert!(!used[r], "residue {r} double-booked on a unit");
                used[r] = true;
            }
        }
    }
    // Tighter II costs area (or is infeasible), never the reverse.
    if let Ok(d2) = synth.synthesize_pipelined(bounds, 2) {
        assert!(d2.area >= d.area);
    }
}

#[test]
fn register_allocation_composes_with_synthesis() {
    let dfg = rc_hls::workloads::fir16();
    let library = Library::table1();
    let d = Synthesizer::new(&dfg, &library)
        .synthesize(Bounds::new(13, 8))
        .unwrap();
    let delays = d.assignment.delays(&dfg, &library);
    let regs = rc_hls::bind::bind_registers(&dfg, &d.schedule, &delays);
    regs.assert_valid();
    // Sanity: register pressure is bounded by live values, and at least
    // the widest join (2 values) plus the output must coexist.
    assert!(regs.register_count() >= 2);
    assert!(regs.register_count() <= dfg.node_count());
}

#[test]
fn mission_time_derating_amplifies_the_gap() {
    // Longer exposure widens the advantage of the reliability-centric
    // approach over the single-version baseline.
    let dfg = rc_hls::workloads::diffeq();
    let short = Library::table1();
    let long = short.at_mission_time(5.0);
    let bounds = Bounds::new(5, 11);
    let gap = |lib: &Library| {
        let ours = Synthesizer::new(&dfg, lib).synthesize(bounds).unwrap();
        let base = synthesize_nmr_baseline(&dfg, lib, bounds, RedundancyModel::default()).unwrap();
        ours.reliability.value() - base.reliability.value()
    };
    assert!(gap(&long) > gap(&short));
}

#[test]
fn render_outputs_are_paper_shaped() {
    let dfg = rc_hls::workloads::figure4a();
    let library = Library::table1();
    let design = Synthesizer::new(&dfg, &library)
        .synthesize(Bounds::new(5, 4))
        .unwrap();
    let text = design.render(&dfg, &library);
    assert!(text.contains("Step  1:"));
    assert!(text.contains("reliability ="));
    assert!(text.contains("u0:"));
}
