#!/usr/bin/env bash
# Regenerates BENCH_baseline.json — the committed reference the CI
# perf_gate compares every build against.
#
# The baseline is deterministic in its *work*: the pinned perf set
# (fixed random:64x8 seeds, fixed bound grid, fixed strategies) always
# produces the same per-phase call counts and feasible-job count, which
# the gate cross-checks. Only the timings are machine-dependent, and the
# gate normalizes those by the calibration score captured in the same
# run — so a baseline refreshed on any reasonably idle machine is valid
# everywhere.
#
# Refresh it when:
#   * the gate reports "stale baseline" (the pinned set's deterministic
#     work changed — e.g. an algorithm now takes a different number of
#     scheduler calls);
#   * you land an intentional performance change and want the gate to
#     hold future builds to the new level.
#
# Usage: scripts/refresh_baseline.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "building release binaries..."
cargo build --release -p rchls-bench --bin bench_engine --bin perf_gate

echo "measuring the pinned perf set (serial, fixed seeds)..."
./target/release/bench_engine --baseline --out BENCH_baseline.json

echo "sanity: the fresh baseline must pass its own gate..."
./target/release/perf_gate BENCH_baseline.json BENCH_baseline.json

echo "BENCH_baseline.json refreshed — review and commit it."
