#!/usr/bin/env bash
# The CI invariants gate: scan the workspace with rchls-lint in JSON
# mode, fail on any finding, and leave the schema-versioned report at
# LINT_invariants.json for upload.
#
# The scan uses the committed lint.toml at the repo root (crate/path
# scoping with its rationale in comments); single sites are suppressed
# only by inline pragmas carrying a mandatory reason. The JSON document
# records every suppressed site alongside the findings, so review can
# audit the exemptions from the artifact alone. See docs/lints.md for
# the rule catalog.
#
# Usage: scripts/lint.sh [extra rchls-lint args…]

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${LINT_OUT:-LINT_invariants.json}"

# --out writes the JSON document; the text summary still lands on
# stdout for the job log. Exit code 1 (findings) fails the job.
cargo run --release -p rchls-lint -- \
  --format json --out "$OUT" "$@"

echo "invariants clean — report at $OUT"
