#!/usr/bin/env bash
# Fails when any intra-repo markdown link in the documentation set
# (README.md and docs/*.md) points at a file that does not exist.
# External links (http/https/mailto) and pure #anchors are skipped;
# a target's #fragment is stripped before the existence check.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md docs/*.md)
fail=0
checked=0

for doc in "${docs[@]}"; do
  [ -f "$doc" ] || { echo "missing documentation file: $doc" >&2; fail=1; continue; }
  dir=$(dirname "$doc")
  # Every inline [text](target) link in the file, target only.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"   # drop the anchor
    path="${path%% *}"     # drop an optional "title"
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $doc: ($target)" >&2
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/^.*](\(.*\))$/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED" >&2
  exit 1
fi
echo "docs link check OK (${checked} intra-repo links resolve)"
