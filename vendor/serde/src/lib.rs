//! A minimal, self-contained stand-in for the `serde` facade.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate supplies just enough of serde's surface for the workspace:
//! the [`Serialize`] / [`Deserialize`] traits, derive macros re-exported
//! from `serde_derive`, and a self-describing [`Value`] tree that
//! `serde_json` renders and parses.
//!
//! Differences from real serde, by design:
//!
//! * serialization is eager: `Serialize` produces a [`Value`] instead of
//!   driving a `Serializer` visitor;
//! * maps serialize with entries sorted by key so output is deterministic
//!   regardless of `HashMap` iteration order;
//! * only the `#[serde(try_from = "T", into = "T")]` container attribute
//!   is supported (the one used in this workspace).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized tree (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key/value map in a fixed order (struct fields in declaration
    /// order; dynamic maps sorted by key).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a struct field by name in a serialized map.
#[must_use]
pub fn map_get<'a>(entries: &'a [(Value, Value)], key: &str) -> Option<&'a Value> {
    entries
        .iter()
        .find(|(k, _)| k.as_str() == Some(key))
        .map(|(_, v)| v)
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// A missing-struct-field error.
    #[must_use]
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }

    /// A shape-mismatch error.
    #[must_use]
    pub fn unexpected(expected: &str, got: &Value) -> Error {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes an instance from the shim's data model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape or range does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(Error::unexpected("unsigned integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for i64")))?,
                    _ => return Err(Error::unexpected("integer", v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(Error::unexpected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::unexpected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::unexpected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::unexpected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::unexpected("sequence", v))?;
                let expect = [$(stringify!($n)),+].len();
                if seq.len() != expect {
                    return Err(Error::custom(format!(
                        "expected a {expect}-tuple, got {} elements", seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Serializes a dynamic map with entries sorted by serialized key, so the
/// output is independent of the map's internal ordering.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut out: Vec<(Value, Value)> = entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    out.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
    Value::Map(out)
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::unexpected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::unexpected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_sequences() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let Value::Map(entries) = m.to_value() else {
            panic!("expected map")
        };
        assert_eq!(entries[0].0.as_str(), Some("a"));
        assert_eq!(entries[1].0.as_str(), Some("b"));
        let back = HashMap::<String, u32>::from_value(&Value::Map(entries)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
