//! A minimal, deterministic property-testing harness with the `proptest`
//! API surface this workspace uses: the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), [`Strategy`] with `prop_map` /
//! `prop_flat_map`, [`Just`], range and tuple strategies,
//! [`collection::vec`], and the `prop_assert!` family.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics immediately with the assertion
//!   message (cases are reproducible: the RNG is seeded from the test
//!   name, so a failure repeats on every run);
//! * `prop_assert!` panics instead of returning `TestCaseError`;
//! * the default case count is 64 (every case here runs real synthesis,
//!   so the real default of 256 would be needlessly slow).

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

pub mod collection;
pub mod prelude;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The harness RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded deterministically from the test's name, so every
    /// run of a given property sees the same case sequence.
    #[must_use]
    pub fn deterministic(test_name: &str) -> TestRng {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

/// Defines property tests over random inputs drawn from strategies.
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)*) = ($($crate::Strategy::sample(&$strat, &mut rng),)*);
                let run = || { $body };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                    // The assertion has already printed its message; add
                    // which case failed for reproducibility, then re-panic.
                    ::std::panic!(
                        "property {} failed at case {}/{} (deterministic seed; rerun reproduces it)",
                        stringify!($name), case + 1, config.cases
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, with an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            ::std::panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0usize..5, 0usize..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn flat_map_dependent_values(xs in (1usize..8).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 100));
        }

        #[test]
        fn map_transforms(s in (0u8..26).prop_map(|i| char::from(b'a' + i))) {
            prop_assert!(s.is_ascii_lowercase());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u64..1000, 3usize);
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(
            crate::Strategy::sample(&strat, &mut a),
            crate::Strategy::sample(&strat, &mut b)
        );
    }
}
