//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `len` (an exact `usize`, a `Range`, or a
/// `RangeInclusive`).
pub fn vec<S: Strategy>(element: S, len: impl IntoLenStrategy) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into_len_strategy(),
    }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: LenStrategy,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Length specifications accepted by [`vec()`].
#[derive(Debug, Clone)]
pub enum LenStrategy {
    /// Exactly this many elements.
    Exact(usize),
    /// A length in `[lo, hi)`.
    Range(usize, usize),
}

impl LenStrategy {
    fn sample(&self, rng: &mut TestRng) -> usize {
        match *self {
            LenStrategy::Exact(n) => n,
            LenStrategy::Range(lo, hi) => {
                assert!(lo < hi, "empty length range");
                lo + (rng.next_u64() as usize) % (hi - lo)
            }
        }
    }
}

/// Conversion into a [`LenStrategy`] (mirrors proptest's `SizeRange`).
pub trait IntoLenStrategy {
    /// Performs the conversion.
    fn into_len_strategy(self) -> LenStrategy;
}

impl IntoLenStrategy for usize {
    fn into_len_strategy(self) -> LenStrategy {
        LenStrategy::Exact(self)
    }
}

impl IntoLenStrategy for std::ops::Range<usize> {
    fn into_len_strategy(self) -> LenStrategy {
        LenStrategy::Range(self.start, self.end)
    }
}

impl IntoLenStrategy for std::ops::RangeInclusive<usize> {
    fn into_len_strategy(self) -> LenStrategy {
        LenStrategy::Range(*self.start(), *self.end() + 1)
    }
}
