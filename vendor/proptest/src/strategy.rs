//! Value-generation strategies.

use crate::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (for dependent inputs, e.g. "a size, then that many elements").
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident $idx:tt),+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
