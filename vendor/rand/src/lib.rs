//! A minimal, deterministic stand-in for the parts of `rand` 0.8 this
//! workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully reproducible from a `u64` seed. It makes no
//! attempt to match the stream of the real `StdRng` (callers here only
//! rely on determinism per seed, not on specific values).

/// Core random-number-generator trait (the subset of `rand::Rng` used in
/// this workspace).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a supported type (`bool`, integers,
    /// `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive integer
    /// ranges, or half-open `f64` ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }
}

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce (the shim's analogue of sampling from
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: Rng>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniformly random element.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 stream to fill the state (never all-zero).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
