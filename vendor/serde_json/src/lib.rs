//! JSON rendering and parsing for the offline `serde` shim.
//!
//! Mirrors the parts of `serde_json`'s API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`], and
//! [`from_value`], all built on the shim's eager [`Value`] tree.
//!
//! Output is deterministic: struct fields render in declaration order,
//! dynamic maps render sorted by key (the shim's `Serialize` impls
//! guarantee this), and floats use Rust's shortest round-trip formatting.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value into the shim's data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from the shim's data model.
///
/// # Errors
///
/// Returns an [`Error`] if the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a value as human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(
            out,
            items.iter(),
            indent,
            level,
            ('[', ']'),
            |out, item, lvl| {
                write_value(out, item, indent, lvl);
            },
        ),
        Value::Map(entries) => {
            write_block(
                out,
                entries.iter(),
                indent,
                level,
                ('{', '}'),
                |out, (k, val), lvl| {
                    match k {
                        Value::Str(s) => write_string(out, s),
                        // JSON object keys must be strings; render scalar keys
                        // through their compact JSON form.
                        other => {
                            let mut key = String::new();
                            write_value(&mut key, other, None, 0);
                            write_string(out, &key);
                        }
                    }
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, lvl);
                },
            );
        }
    }
}

fn write_block<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
    }
    if let Some(width) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = x.to_string();
        out.push_str(&s);
        // Distinguish floats from integers in the output so parsing
        // round-trips the numeric shape.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; mirror serde_json by emitting null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "malformed literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            _ => self.number(),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected a value at byte {start}")));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("malformed number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::custom(format!("malformed number `{text}`")))
                .and_then(|_| {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::custom(format!("number `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("malformed number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&1u32).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,\"x\"],[2,\"y\"]]");
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_json() {
        let v: Value = from_str("{\"a\": [1, 2.5, null], \"b\": {\"c\": true}}").unwrap();
        let Value::Map(entries) = &v else { panic!() };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0.as_str(), Some("a"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nulle").is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x);
        }
    }
}
