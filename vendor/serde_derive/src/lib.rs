//! Derive macros for the offline `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! type shapes this workspace actually uses:
//!
//! * structs with named fields (any visibility),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   sequences),
//! * enums with unit variants only (serialized as the variant name),
//! * the `#[serde(try_from = "T", into = "T")]` container attribute.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote`
//! available offline) and emit impls of the shim's eager `Serialize` /
//! `Deserialize` traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `enum E { A, B }` — variant names.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(try_from = "T")]` proxy type, if present.
    try_from: Option<String>,
    /// `#[serde(into = "T")]` proxy type, if present.
    into: Option<String>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("::core::compile_error!({msg:?});")
                .parse()
                .expect("compile_error tokens parse")
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("generated impl tokens parse")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    let mut try_from = None;
    let mut into = None;

    // Leading attributes (doc comments, #[serde(...)], #[derive(...)], ...).
    while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(g)) = tokens.get(pos + 1) else {
            return Err("malformed attribute".into());
        };
        parse_serde_attr(g.stream(), &mut try_from, &mut into)?;
        pos += 2;
    }

    // Optional visibility: `pub` or `pub(...)`.
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected a type name".into()),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` unsupported"
        ));
    }

    let shape = match (keyword.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(g.stream(), &name)?)
        }
        _ => {
            return Err(format!(
                "serde shim derive: unsupported item shape for `{name}`"
            ))
        }
    };
    Ok(Item {
        name,
        shape,
        try_from,
        into,
    })
}

/// Extracts `try_from`/`into` from a `serde(...)` attribute body, ignoring
/// every other attribute.
fn parse_serde_attr(
    attr: TokenStream,
    try_from: &mut Option<String>,
    into: &mut Option<String>,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    let is_serde = matches!(&tokens.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return Ok(());
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Err("malformed #[serde(...)] attribute".into());
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0usize;
    while i < args.len() {
        let key = match &args[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => return Err("expected an identifier in #[serde(...)]".into()),
        };
        let value = match (args.get(i + 1), args.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                let raw = lit.to_string();
                raw.trim_matches('"').to_string()
            }
            _ => {
                return Err(format!(
                    "serde shim derive: only `key = \"value\"` entries supported, at `{key}`"
                ))
            }
        };
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            other => {
                return Err(format!(
                    "serde shim derive: unsupported attribute `{other}`"
                ));
            }
        }
        i += 3;
        if matches!(&args.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(())
}

/// Field names of a named-field struct body, skipping attributes,
/// visibility, and the type tokens (angle-bracket aware).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 2; // `#` + bracket group
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            pos += 1;
            if matches!(&tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                pos += 1;
            }
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            _ => return Err("expected a field name".into()),
        };
        pos += 1;
        if !matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        pos += 1;
        // Skip the type: angle brackets nest, every other bracket is one
        // token group already.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Number of fields of a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    for (i, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && i + 1 < tokens.len() => {
                fields += 1;
            }
            _ => {}
        }
    }
    fields
}

/// Variant names of a unit-only enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            pos += 2;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            _ => return Err(format!("expected a variant name in `{enum_name}`")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: enum `{enum_name}` has a data-carrying variant `{name}`, \
                     only unit variants are supported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                pos += 1;
                while !matches!(&tokens.get(pos), None | Some(TokenTree::Punct(_))) {
                    pos += 1;
                }
            }
            _ => {}
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(name);
    }
    Ok(variants)
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let proxy: {proxy} = <{proxy} as ::std::convert::From<{name}>>::from(\
                 ::std::clone::Clone::clone(self));\n\
             serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(serde::Value::Str(::std::string::ToString::to_string({f:?})), \
                              serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
            }
            Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
            Shape::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            }
            Shape::UnitEnum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("{name}::{v} => {v:?}"))
                    .collect();
                format!(
                    "serde::Value::Str(::std::string::ToString::to_string(\
                         match self {{ {} }}))",
                    arms.join(", ")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.try_from {
        format!(
            "let proxy: {proxy} = serde::Deserialize::from_value(v)?;\n\
             <{name} as ::std::convert::TryFrom<{proxy}>>::try_from(proxy)\
                 .map_err(serde::Error::custom)"
        )
    } else {
        match &item.shape {
            Shape::NamedStruct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::from_value(\
                                 serde::map_get(entries, {f:?})\
                                     .ok_or_else(|| serde::Error::missing_field({f:?}))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let entries = serde::Value::as_map(v)\
                         .ok_or_else(|| serde::Error::unexpected(\"map\", v))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Shape::TupleStruct(1) => {
                format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(v)?))")
            }
            Shape::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                    .collect();
                format!(
                    "let seq = serde::Value::as_seq(v)\
                         .ok_or_else(|| serde::Error::unexpected(\"sequence\", v))?;\n\
                     if seq.len() != {n} {{\n\
                         return ::std::result::Result::Err(serde::Error::custom(\
                             ::std::format!(\"expected {n} elements, got {{}}\", seq.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Shape::UnitEnum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!("::std::option::Option::Some({v:?}) => ::std::result::Result::Ok({name}::{v}),")
                    })
                    .collect();
                format!(
                    "match serde::Value::as_str(v) {{\n\
                         {}\n\
                         ::std::option::Option::Some(other) => ::std::result::Result::Err(\
                             serde::Error::custom(::std::format!(\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         ::std::option::Option::None => ::std::result::Result::Err(\
                             serde::Error::unexpected(\"string\", v)),\n\
                     }}",
                    arms.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> ::std::result::Result<{name}, serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
