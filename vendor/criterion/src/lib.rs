//! A minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is warmed
//! up briefly and then timed over an adaptive iteration count; the mean,
//! minimum, and iteration count are printed in a `criterion`-like line.
//! Set `BENCH_QUICK=1` to cut measurement time by ~10x (useful in CI).

use std::fmt;
use std::time::{Duration, Instant};

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    #[must_use]
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Drives the timed closure.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    min_iter: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Brief warmup (untimed).
        let warmup_end = Instant::now() + self.budget / 5;
        while Instant::now() < warmup_end {
            std::hint::black_box(f());
        }
        let measure_start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            self.elapsed += dt;
            self.iters_done += 1;
            if dt < self.min_iter {
                self.min_iter = dt;
            }
            if measure_start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn measurement_budget() -> Duration {
    match std::env::var("BENCH_QUICK") {
        Ok(v) if v != "0" && !v.is_empty() => Duration::from_millis(30),
        _ => Duration::from_millis(300),
    }
}

fn run_benchmark(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        min_iter: Duration::MAX,
        budget: measurement_budget(),
    };
    f(&mut bencher);
    if bencher.iters_done == 0 {
        println!("{name:<40} (no iterations run)");
        return;
    }
    let mean = bencher.elapsed / u32::try_from(bencher.iters_done).unwrap_or(u32::MAX);
    println!(
        "{name:<40} time: [mean {} min {}]  ({} iterations)",
        format_duration(mean),
        format_duration(bencher.min_iter),
        bencher.iters_done
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", "21"), &input, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("ours", "fir16").to_string(), "ours/fir16");
        assert_eq!(BenchmarkId::from_parameter(40).to_string(), "40");
    }
}
